//! Implementation of the `trace_report` binary: an instrumented profiling
//! run over the F1 / F2 / M1.0 proxies and the D1 streaming ensemble.
//!
//! Emits `BENCH_trace.json` with
//!
//! 1. **Overhead gate** — per-frame M1.0 latency with the recorder off vs
//!    on in the same instrumented binary; the run *fails* if enabling
//!    recording costs more than [`MAX_OVERHEAD_PCT`] percent.
//! 2. **Per-layer profiles** — p50/p95/p99/max per program step over
//!    [`PROFILE_FRAMES`] frames, from the span histograms.
//! 3. **Cycle-model drift** — each model's measured step medians (exact,
//!    from the raw ring-buffer events — the log-histogram p50s are too
//!    coarse to score a ≤15% gate) fitted against the np-dory/np-gap8
//!    cycle predictions for the same proxy topology
//!    ([`np_trace::drift`]). When a calibration artifact is loaded
//!    (`NP_CALIB`, produced by the `calibrate` binary) the drift of the
//!    *calibrated* model is reported side by side with the analytic one
//!    and gated at
//!    [`MAX_CALIBRATED_DRIFT_PCT`](crate::calibrate::MAX_CALIBRATED_DRIFT_PCT).
//! 4. **Stream telemetry** — the D1 = (F1, M1.0) ensemble over a
//!    [`STREAM_FRAMES`]-frame synthetic stream: per-frame decision, OP
//!    score vs threshold, little/big latency split, running `frac_big`,
//!    and the process-wide pool/frame counters.
//! 5. **Serving telemetry** — a small `np-serve` session-multiplexing
//!    run (with one mid-run retirement): `sessions_active`
//!    (admitted − retired from the `serve.*` counters), the queue-depth
//!    high-water mark, and per-stream queue depth plus latency
//!    quantiles from each session's histogram.
//!
//! A second output file holds the stream's span events in Chrome trace
//! format for `chrome://tracing` / Perfetto.

use crate::calibrate::MAX_CALIBRATED_DRIFT_PCT;
use np_adaptive::FrameRunner;
use np_dory::{deploy_analytic, deploy_calibrated};
use np_gap8::Gap8Config;
use np_nn::init::SmallRng;
use np_quant::{QScratch, QuantizedNetwork};
use np_tensor::parallel::Pool;
use np_tensor::Tensor;
use np_trace::export::{chrome_trace_json, json_f32, summary_json};
use np_trace::SpanSummary;
use np_zoo::channels::PROXY_INPUT;
use np_zoo::ModelId;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Frames per model for the layer-profiling section.
const PROFILE_FRAMES: usize = 30;
/// Frames streamed through the D1 ensemble.
const STREAM_FRAMES: usize = 120;
/// Reps for the best-of overhead timing.
const OVERHEAD_REPS: usize = 30;
/// Gate: enabling the recorder may not cost more than this per frame.
const MAX_OVERHEAD_PCT: f64 = 5.0;

fn pseudo_frames(n: usize, seed: u64) -> Tensor {
    let (c, h, w) = PROXY_INPUT;
    let mut s = seed + 1;
    let data: Vec<f32> = (0..n * c * h * w)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 40) as i32 % 200) as f32 / 100.0 - 1.0
        })
        .collect();
    Tensor::from_vec(&[n, c, h, w], data)
}

/// Best-of-`OVERHEAD_REPS` wall time of `f` in nanoseconds.
fn best_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..OVERHEAD_REPS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e9);
    }
    best
}

/// True for the per-step spans of `model` that np-dory also prices:
/// excludes the whole-frame span and in-place ReLU steps (free at
/// deployment granularity, filtered by dory's `matters`).
fn is_compute_step(name: &str, model: &str) -> bool {
    let Some(rest) = name.strip_prefix(model) else {
        return false;
    };
    let Some(rest) = rest.strip_prefix('/') else {
        return false;
    };
    rest != "frame" && !rest.ends_with("-relu")
}

/// Entry point for the `trace_report` binary.
pub fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_trace.json".to_string());
    let chrome_path = args
        .next()
        .unwrap_or_else(|| "BENCH_trace_events.json".to_string());
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool = Pool::serial();

    np_trace::install(np_trace::TraceConfig::default());

    let calib = pseudo_frames(4, 7);
    let frame = pseudo_frames(1, 8);
    let mut rng = SmallRng::seed(3);
    let models: Vec<(ModelId, np_nn::Sequential, QuantizedNetwork)> =
        [ModelId::F1, ModelId::F2, ModelId::M10]
            .into_iter()
            .map(|id| {
                let net = id.build_proxy(&mut rng);
                let qnet = QuantizedNetwork::quantize(&net, &calib);
                (id, net, qnet)
            })
            .collect();

    // --- 1. Overhead gate: recorder off vs on, same binary, M1.0 --------
    let (_, _, qm10) = models
        .iter()
        .find(|(id, _, _)| *id == ModelId::M10)
        .unwrap();
    let program = qm10.compile(PROXY_INPUT);
    let kernel_isa = program.isa().as_str();
    let mut scratch = QScratch::for_program(&program);
    let q = qm10.input_params().quantize_slice(frame.as_slice());

    np_trace::disable();
    let off_ns = best_ns(|| {
        black_box(program.run_int_prepacked(pool, &mut scratch, black_box(&q)));
    });
    np_trace::enable();
    let on_ns = best_ns(|| {
        black_box(program.run_int_prepacked(pool, &mut scratch, black_box(&q)));
    });
    let overhead_pct = 100.0 * (on_ns / off_ns - 1.0);
    np_trace::info!(
        "[trace_report] M1.0 per-frame: recorder off {off_ns:.0} ns, \
         on {on_ns:.0} ns ({overhead_pct:+.2}% overhead, gate {MAX_OVERHEAD_PCT}%)"
    );
    np_trace::reset(); // drop the overhead-measurement events

    // --- 2 + 3. Per-layer profiles and cycle-model drift ----------------
    for (_, _, qnet) in &models {
        let program = qnet.compile(PROXY_INPUT);
        let mut scratch = QScratch::for_program(&program);
        let q = qnet.input_params().quantize_slice(frame.as_slice());
        for _ in 0..PROFILE_FRAMES {
            black_box(program.run_int_prepacked(pool, &mut scratch, black_box(&q)));
        }
    }
    let profile: Vec<SpanSummary> = np_trace::summary()
        .into_iter()
        .filter(|s| s.count > 0)
        .collect();
    // Exact per-span medians from the raw events: the histogram p50s
    // quantize at ~12.5% per bucket, which would drown a ≤15% drift gate.
    let span_names = np_trace::span_names();
    let medians = np_calib::median_ns_by_span(&np_trace::span_events());
    // A name can be registered more than once (the overhead gate compiles
    // M1.0 separately); only the profile-loop registration has events
    // after the reset above, so scan every id carrying the name.
    let median_of = |name: &str| -> f64 {
        span_names
            .iter()
            .enumerate()
            .filter(|(_, n)| n.as_str() == name)
            .find_map(|(idx, _)| {
                medians
                    .iter()
                    .find(|(s, _)| *s as usize == idx)
                    .map(|(_, m)| *m)
            })
            .expect("profiled span must be registered with events")
    };

    // Calibration artifact (NP_CALIB): when present, the calibrated cycle
    // model is scored side by side with the analytic one.
    let calib_model = np_gap8::calib::current_or_warn("trace_report drift");

    let gap8 = Gap8Config::default();
    let mut model_sections = Vec::new();
    for (id, net, _) in &models {
        let name = id.name();
        let layers: Vec<SpanSummary> = profile
            .iter()
            .filter(|s| s.name.starts_with(&format!("{name}/")))
            .cloned()
            .collect();
        let steps: Vec<&SpanSummary> = layers
            .iter()
            .filter(|s| is_compute_step(&s.name, &name))
            .collect();
        let desc = net.describe(PROXY_INPUT);
        let plan = deploy_analytic(&desc, &gap8).expect("proxy model must fit GAP8");
        assert_eq!(
            steps.len(),
            plan.layers.len(),
            "{name}: program compute steps must align 1:1 with dory plan layers"
        );
        let triples: Vec<(String, f64, f64)> = steps
            .iter()
            .zip(&plan.layers)
            .map(|(s, l)| (s.name.clone(), median_of(&s.name), l.cycles.total() as f64))
            .collect();
        let drift = np_trace::drift::drift_report(&triples);
        let drift_calibrated = calib_model.map(|m| {
            let cal_plan = deploy_calibrated(&desc, &gap8, m).expect("proxy model must fit GAP8");
            let triples: Vec<(String, f64, f64)> = steps
                .iter()
                .zip(&cal_plan.layers)
                .map(|(s, l)| (s.name.clone(), median_of(&s.name), l.cycles.total() as f64))
                .collect();
            np_trace::drift::drift_report(&triples)
        });
        match &drift_calibrated {
            Some(cal) => np_trace::info!(
                "[trace_report] {name}: {} steps, analytic drift mean |{:.1}|% max \
                 |{:.1}|% -> calibrated mean |{:.1}|% max |{:.1}|% (gate \
                 {MAX_CALIBRATED_DRIFT_PCT}%)",
                steps.len(),
                drift.mean_abs_drift_pct,
                drift.max_abs_drift_pct,
                cal.mean_abs_drift_pct,
                cal.max_abs_drift_pct
            ),
            None => np_trace::info!(
                "[trace_report] {name}: {} steps, drift mean |{:.1}|% max |{:.1}|% \
                 (scale {:.3} ns/cycle, no calibration artifact)",
                steps.len(),
                drift.mean_abs_drift_pct,
                drift.max_abs_drift_pct,
                drift.scale_ns_per_cycle
            ),
        }
        model_sections.push((name, layers, drift, drift_calibrated));
    }
    np_trace::reset(); // stream section gets a clean event log

    // --- 4. D1 streaming ensemble ----------------------------------------
    let little = &models
        .iter()
        .find(|(id, _, _)| *id == ModelId::F1)
        .unwrap()
        .2;
    let big = &models
        .iter()
        .find(|(id, _, _)| *id == ModelId::M10)
        .unwrap()
        .2;
    const TH: f32 = 0.05;
    let mut runner = FrameRunner::new(little, big, PROXY_INPUT, TH, pool);
    let still = pseudo_frames(1, 21);
    let moving = pseudo_frames(1, 22);
    for f in 0..STREAM_FRAMES {
        let x = if f % 4 == 0 { &moving } else { &still };
        black_box(runner.run_frame(x.as_slice()));
    }
    let frame_events = np_trace::frame_events();

    // --- 5. Multi-session serving telemetry ------------------------------
    // Four streams multiplexed through shared programs; one stream is
    // retired halfway so `sessions_active` visibly diverges from the
    // admitted total. Submissions arrive 500 µs before each tick commits,
    // so the per-stream latency histograms hold non-trivial quantiles.
    const SERVE_SESSIONS: usize = 4;
    const SERVE_FRAMES: usize = 10;
    let ens = np_serve::ServingEnsemble::compile(little, big, PROXY_INPUT, SERVE_SESSIONS);
    let mut server = np_serve::Server::new(
        &ens,
        pool,
        np_serve::ServeConfig {
            max_sessions: SERVE_SESSIONS,
            queue_capacity: 4,
        },
    );
    let mut ids: Vec<np_serve::SessionId> = (0..SERVE_SESSIONS)
        .map(|_| server.admit(TH).expect("slab sized for the run"))
        .collect();
    for f in 0..SERVE_FRAMES {
        let now = f as u64 * 1_000;
        for (s, id) in ids.iter().enumerate() {
            let x = if (f + s) % 3 == 0 { &moving } else { &still };
            assert!(server.submit(*id, x.as_slice(), now));
        }
        black_box(server.serve(now + 500).len());
        if f == SERVE_FRAMES / 2 {
            let gone = ids.pop().expect("streams remain");
            assert!(server.retire(gone));
        }
    }
    let sessions_admitted = np_trace::counter_value(np_trace::Counter::ServeSessionsAdmitted);
    let sessions_retired = np_trace::counter_value(np_trace::Counter::ServeSessionsRetired);
    let sessions_active = sessions_admitted - sessions_retired;
    let queue_depth_peak = np_trace::counter_value(np_trace::Counter::ServeQueueDepthPeak);
    np_trace::info!(
        "[trace_report] serving: {} frames over {sessions_admitted} admitted sessions \
         ({sessions_active} active after retirement), queue peak {queue_depth_peak}",
        server.frames_served()
    );

    let counters = np_trace::counters();
    let chrome = chrome_trace_json(&np_trace::span_events(), &np_trace::span_names());
    np_trace::info!(
        "[trace_report] D1 stream: {} frames, frac_big {:.3}",
        runner.frames(),
        runner.frac_big()
    );

    // --- Assemble BENCH_trace.json ---------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"cpus_available\": {cpus},");
    let _ = writeln!(json, "  \"profile_frames\": {PROFILE_FRAMES},");
    let _ = writeln!(json, "  \"kernel_isa\": \"{kernel_isa}\",");
    let _ = writeln!(json, "  \"np_threads\": {},", pool.threads());
    let _ = writeln!(
        json,
        "  \"input_chw\": [{}, {}, {}],",
        PROXY_INPUT.0, PROXY_INPUT.1, PROXY_INPUT.2
    );
    let _ = writeln!(
        json,
        "  \"calibration\": {{\"present\": {}, \"source\": \"{}\"}},",
        calib_model.is_some(),
        if calib_model.is_some() {
            std::env::var("NP_CALIB").unwrap_or_default()
        } else {
            "analytic".to_string()
        }
    );
    let _ = writeln!(
        json,
        "  \"overhead\": {{\"recorder_off_ns\": {off_ns:.0}, \"recorder_on_ns\": {on_ns:.0}, \
         \"overhead_pct\": {overhead_pct:.3}, \"max_overhead_pct\": {MAX_OVERHEAD_PCT}}},"
    );
    json.push_str("  \"models\": [\n");
    let n_models = model_sections.len();
    for (i, (name, layers, drift, drift_calibrated)) in model_sections.iter().enumerate() {
        let _ = writeln!(json, "    {{\"model\": \"{name}\",");
        let _ = writeln!(json, "     \"layers\": {},", summary_json(layers, 5));
        let _ = writeln!(json, "     \"drift\": {},", drift.to_json(5));
        match drift_calibrated {
            Some(cal) => {
                let _ = writeln!(json, "     \"drift_calibrated\": {}", cal.to_json(5));
            }
            None => {
                let _ = writeln!(json, "     \"drift_calibrated\": null");
            }
        }
        let _ = writeln!(json, "    }}{}", if i + 1 < n_models { "," } else { "" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"stream\": {{");
    let _ = writeln!(
        json,
        "    \"ensemble\": \"D1\", \"little\": \"F1\", \"big\": \"M1.0\", \
         \"threshold\": {TH}, \"frames\": {STREAM_FRAMES}, \"frac_big\": {:.4},",
        runner.frac_big()
    );
    json.push_str("    \"frame_events\": [\n");
    let mut big_so_far = 0u64;
    for (i, e) in frame_events.iter().enumerate() {
        big_so_far += u64::from(e.decision.runs_big());
        let _ = write!(
            json,
            "      {{\"frame\": {}, \"decision\": \"{}\", \"op_score\": {}, \
             \"threshold\": {}, \"little_ns\": {}, \"big_ns\": {}, \"frac_big\": {:.4}}}",
            e.frame,
            e.decision.name(),
            json_f32(e.op_score),
            json_f32(e.threshold),
            e.little_ns,
            e.big_ns,
            big_so_far as f64 / (i + 1) as f64
        );
        json.push_str(if i + 1 < frame_events.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n  },\n");
    let _ = writeln!(json, "  \"serving\": {{");
    let _ = writeln!(
        json,
        "    \"sessions_admitted\": {sessions_admitted}, \
         \"sessions_retired\": {sessions_retired}, \
         \"sessions_active\": {sessions_active},"
    );
    let _ = writeln!(
        json,
        "    \"frames_served\": {}, \"queue_depth_peak\": {queue_depth_peak},",
        server.frames_served()
    );
    json.push_str("    \"per_stream\": [\n");
    for (s, id) in ids.iter().enumerate() {
        let st = server.stream_stats(*id).expect("live session");
        let _ = writeln!(
            json,
            "      {{\"session\": {s}, \"frames\": {}, \"queue_depth\": {}, \
             \"peak_queue_depth\": {}, \"p50_latency_us\": {}, \"p99_latency_us\": {}}}{}",
            st.frames,
            st.queue_depth,
            st.peak_queue_depth,
            st.p50_latency_us,
            st.p99_latency_us,
            if s + 1 < ids.len() { "," } else { "" },
        );
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"counters\": {");
    for (i, (name, value)) in counters.iter().enumerate() {
        let _ = write!(
            json,
            "\"{name}\": {value}{}",
            if i + 1 < counters.len() { ", " } else { "" }
        );
    }
    json.push_str("}\n}\n");

    std::fs::write(&out_path, &json).expect("write trace json");
    std::fs::write(&chrome_path, &chrome).expect("write chrome trace");
    println!("{json}");
    np_trace::info!("[trace_report] wrote {out_path} and {chrome_path}");
    assert!(
        overhead_pct <= MAX_OVERHEAD_PCT,
        "instrumentation overhead {overhead_pct:.2}% exceeds the {MAX_OVERHEAD_PCT}% gate"
    );
    for (name, _, _, drift_calibrated) in &model_sections {
        if let Some(cal) = drift_calibrated {
            assert!(
                cal.mean_abs_drift_pct <= MAX_CALIBRATED_DRIFT_PCT,
                "{name}: post-calibration mean abs drift {:.2}% exceeds the \
                 {MAX_CALIBRATED_DRIFT_PCT}% gate",
                cal.mean_abs_drift_pct
            );
        }
    }
}
