//! Multi-stream serving benchmark emitting `BENCH_serving.json`.
//!
//! Drives the `np-serve` session-multiplexing server with simulated drone
//! streams over the paper's D1 ensemble (F1 little, M1.0 big) and gates
//! the properties the serving layer promises:
//!
//! 1. **Throughput** — N concurrent sessions multiplexed across one pool
//!    vs the same N streams served back-to-back on isolated
//!    [`FrameRunner`]s sharing the same packed programs. On a multi-core
//!    host the multiplexed aggregate fps must be ≥ 1.5× sequential; on a
//!    single-CPU box the gate relaxes to no-regression (≥ 0.9×), since
//!    there is no parallelism to harvest — only scheduling overhead to
//!    not pay.
//! 2. **Exactness** — every served per-session result stream must be
//!    bit-identical to its isolated FrameRunner baseline, even though
//!    escalations coalesce into cross-session micro-batches.
//! 3. **SLO** — under a seeded deterministic Poisson load at ~0.2 of
//!    sequential capacity, served p99 latency (virtual clock advanced by
//!    measured execution time) must stay within 2× the isolated
//!    per-frame p99. The hard gate applies on multi-core hosts, where
//!    colliding arrivals run in parallel; on a single CPU collisions
//!    necessarily serialize — each pileup adds a whole service time —
//!    so the run records p99 against the limit without asserting.
//! 4. **Zero allocation** — the steady-state submit/tick/commit loop on
//!    a serial pool, including a retire/re-admit cycle, performs zero
//!    heap allocations (counting global allocator).
//!
//! Timing fields use the `_us` suffix (neutral in `bench_compare`);
//! `aggregate_fps` / `speedup_vs_sequential` are direction-gated, and
//! the checked-in baseline is regenerated on the reference box.
//!
//! Usage: `cargo run --release -p np-bench --bin bench_serving [--smoke] [out.json]`

use np_adaptive::FrameResult;
use np_nn::init::SmallRng;
use np_quant::QuantizedNetwork;
use np_serve::{PoissonArrivals, ServeConfig, Served, Server, ServingEnsemble, SessionId};
use np_tensor::parallel::{cpus_available, Pool};
use np_tensor::Tensor;
use np_zoo::channels::PROXY_INPUT;
use np_zoo::ModelId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const TH: f32 = 0.05;
const MAX_COALESCE: usize = 4;
const SLO_FACTOR: f64 = 2.0;

fn pseudo_frames(n: usize, seed: u64) -> Tensor {
    let (c, h, w) = PROXY_INPUT;
    let mut s = seed + 1;
    let data: Vec<f32> = (0..n * c * h * w)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 40) as i32 % 200) as f32 / 100.0 - 1.0
        })
        .collect();
    Tensor::from_vec(&[n, c, h, w], data)
}

/// One simulated drone stream: a per-session still/moving frame pair with
/// motion every third frame, offset by the session index so escalations
/// land on different ticks across sessions and the coalescer sees ragged
/// micro-batches.
struct Stream {
    frames: Vec<f32>,
    frame_len: usize,
}

impl Stream {
    fn synthesize(session: usize, n_frames: usize) -> Self {
        let still = pseudo_frames(1, 200 + session as u64);
        let moving = pseudo_frames(1, 300 + session as u64);
        let frame_len = still.as_slice().len();
        let mut frames = Vec::with_capacity(n_frames * frame_len);
        for f in 0..n_frames {
            let src = if (f + session).is_multiple_of(3) {
                &moving
            } else {
                &still
            };
            frames.extend_from_slice(src.as_slice());
        }
        Stream { frames, frame_len }
    }

    fn frame(&self, i: usize) -> &[f32] {
        &self.frames[i * self.frame_len..(i + 1) * self.frame_len]
    }

    fn len(&self) -> usize {
        self.frames.len() / self.frame_len
    }
}

fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_serving.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let cpus = cpus_available();
    let pool = Pool::new(cpus);
    let (n_sessions, n_frames, reps) = if smoke { (4, 12, 5) } else { (8, 32, 5) };

    eprintln!(
        "[bench_serving] {n_sessions} sessions x {n_frames} frames, pool {cpus} \
         thread(s){}",
        if smoke { ", smoke mode" } else { "" }
    );

    // Shared compiled programs: the paper's D1 ensemble on the proxy
    // shapes, the big model carrying a batch plan for cross-session
    // coalescing.
    let calib = pseudo_frames(4, 7);
    let mut rng = SmallRng::seed(3);
    let little = QuantizedNetwork::quantize(&ModelId::F1.build_proxy(&mut rng), &calib);
    let big = QuantizedNetwork::quantize(&ModelId::M10.build_proxy(&mut rng), &calib);
    let ens = ServingEnsemble::compile(&little, &big, PROXY_INPUT, MAX_COALESCE);
    let streams: Vec<Stream> = (0..n_sessions)
        .map(|s| Stream::synthesize(s, n_frames))
        .collect();
    let total_frames = n_sessions * n_frames;

    // ── Sequential baseline ────────────────────────────────────────────
    // The same streams served back-to-back on isolated FrameRunners over
    // the *same* shared programs and the same pool: the exactness
    // reference, the fps baseline, and the isolated per-frame latency
    // distribution the SLO is defined against.
    let mut baseline: Vec<Vec<FrameResult>> = Vec::new();
    let mut isolated_us: Vec<f64> = Vec::with_capacity(total_frames * reps);
    let mut seq_best_s = f64::INFINITY;
    for rep in 0..reps {
        let mut results: Vec<Vec<FrameResult>> = Vec::with_capacity(n_sessions);
        let t0 = Instant::now();
        for stream in &streams {
            let mut runner = ens.runner(TH, pool);
            let mut out = Vec::with_capacity(stream.len());
            for i in 0..stream.len() {
                let t = Instant::now();
                let r = runner.run_frame(black_box(stream.frame(i)));
                isolated_us.push(t.elapsed().as_secs_f64() * 1e6);
                out.push(r);
            }
            results.push(out);
        }
        let total = t0.elapsed().as_secs_f64();
        seq_best_s = seq_best_s.min(total);
        if rep == 0 {
            baseline = results;
        } else {
            assert_eq!(
                results, baseline,
                "sequential baseline must be deterministic"
            );
        }
    }
    let sequential_fps = total_frames as f64 / seq_best_s;
    isolated_us.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let isolated_p50_us = exact_quantile(&isolated_us, 0.5);
    let isolated_p99_us = exact_quantile(&isolated_us, 0.99);
    eprintln!(
        "[bench_serving] sequential: {sequential_fps:.0} fps, isolated frame \
         p50 {isolated_p50_us:.0} µs / p99 {isolated_p99_us:.0} µs"
    );

    // ── Saturated multiplexing ─────────────────────────────────────────
    // Every frame arrives at t=0; the server drains the backlog one
    // frame per session per tick. This is the throughput scenario the
    // speedup gate reads, and the stream it checks bit-exactness on.
    let mut mux_best_s = f64::INFINITY;
    let mut mux_results: Vec<Vec<FrameResult>> = Vec::new();
    for rep in 0..reps {
        let mut server = Server::new(
            &ens,
            pool,
            ServeConfig {
                max_sessions: n_sessions,
                queue_capacity: n_frames,
            },
        );
        let ids: Vec<SessionId> = (0..n_sessions)
            .map(|_| server.admit(TH).expect("slab sized for the fleet"))
            .collect();
        for (s, id) in ids.iter().enumerate() {
            for i in 0..n_frames {
                assert!(server.submit(*id, streams[s].frame(i), 0));
            }
        }
        let mut results: Vec<Vec<FrameResult>> = vec![Vec::with_capacity(n_frames); n_sessions];
        let mut served_frames = 0usize;
        let t0 = Instant::now();
        while served_frames < total_frames {
            let served = server.serve(0);
            assert!(!served.is_empty(), "backlog must keep draining");
            served_frames += served.len();
            for sv in served {
                results[sv.session.index()].push(sv.result);
            }
        }
        let total = t0.elapsed().as_secs_f64();
        if total < mux_best_s {
            mux_best_s = total;
        }
        if rep == 0 {
            mux_results = results;
        } else {
            assert_eq!(results, mux_results, "served results must be deterministic");
        }
    }
    let aggregate_fps = total_frames as f64 / mux_best_s;
    let speedup = aggregate_fps / sequential_fps;
    let exact = mux_results == baseline;
    eprintln!(
        "[bench_serving] multiplexed: {aggregate_fps:.0} fps aggregate, \
         {speedup:.2}x vs sequential, bit-exact: {exact}"
    );

    // ── SLO scenario ───────────────────────────────────────────────────
    // Seeded Poisson arrivals at ~0.2 of measured sequential capacity,
    // served on a virtual clock advanced by each tick's measured
    // execution time: arrivals stay deterministic, latencies reflect
    // real service speed.
    let util = 0.2;
    let mean_frame_us = 1e6 / sequential_fps * n_sessions as f64;
    let mean_gap_us = mean_frame_us / util;
    let arrivals: Vec<Vec<u64>> = (0..n_sessions)
        .map(|s| {
            PoissonArrivals::new(1_000 + s as u64, mean_gap_us)
                .take(n_frames)
                .collect()
        })
        .collect();
    let mut server = Server::new(
        &ens,
        pool,
        ServeConfig {
            max_sessions: n_sessions,
            queue_capacity: n_frames,
        },
    );
    let ids: Vec<SessionId> = (0..n_sessions)
        .map(|_| server.admit(TH).expect("slab sized for the fleet"))
        .collect();
    let mut next: Vec<usize> = vec![0; n_sessions];
    let mut slo_us: Vec<f64> = Vec::with_capacity(total_frames);
    let mut now: u64 = 0;
    let mut served_frames = 0usize;
    while served_frames < total_frames {
        let mut pending_min: Option<u64> = None;
        for s in 0..n_sessions {
            while next[s] < n_frames && arrivals[s][next[s]] <= now {
                assert!(server.submit(ids[s], streams[s].frame(next[s]), arrivals[s][next[s]]));
                next[s] += 1;
            }
            if next[s] < n_frames {
                let a = arrivals[s][next[s]];
                pending_min = Some(pending_min.map_or(a, |m| m.min(a)));
            }
        }
        if server.total_queue_depth() == 0 {
            // Idle: jump the virtual clock to the next arrival.
            now = pending_min.expect("frames remain but none queued or pending");
            continue;
        }
        let t = Instant::now();
        let served: &[Served] = server.tick(now);
        let elapsed_us = (t.elapsed().as_secs_f64() * 1e6).max(1.0) as u64;
        let done = now + elapsed_us;
        for sv in served {
            slo_us.push(done.saturating_sub(sv.arrival_us) as f64);
        }
        served_frames += served.len();
        server.commit(done);
        now = done;
    }
    slo_us.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let slo_p50_us = exact_quantile(&slo_us, 0.5);
    let slo_p99_us = exact_quantile(&slo_us, 0.99);
    let slo_limit_us = SLO_FACTOR * isolated_p99_us;
    let agg = server.aggregate_stats();
    eprintln!(
        "[bench_serving] slo @ util {util:.2}: p50 {slo_p50_us:.0} µs, p99 {slo_p99_us:.0} µs \
         (limit {slo_limit_us:.0} µs), {} coalesced-big frames",
        agg.big_frames
    );

    // Per-stream histogram telemetry from the SLO run (LogHistogram
    // power-of-two buckets — coarser than the exact quantiles above).
    let mut per_stream = String::new();
    for (s, id) in ids.iter().enumerate() {
        let st = server.stream_stats(*id).expect("live session");
        let _ = writeln!(
            per_stream,
            "      {{\"session\": {s}, \"frames\": {}, \"big_frames\": {}, \
             \"peak_queue_depth\": {}, \"p50_latency_us\": {}, \"p99_latency_us\": {}, \
             \"max_latency_us\": {}}}{}",
            st.frames,
            st.big_frames,
            st.peak_queue_depth,
            st.p50_latency_us,
            st.p99_latency_us,
            st.max_latency_us,
            if s + 1 < n_sessions { "," } else { "" },
        );
    }

    // ── Zero-allocation steady state ───────────────────────────────────
    // Serial pool (the counting-allocator convention: wider pools pay
    // only the documented thread::scope spawns). After warm-up the
    // submit/tick/commit loop — including a retire/re-admit cycle onto a
    // recycled slot — must not touch the heap.
    let mut zserver = Server::new(
        &ens,
        Pool::serial(),
        ServeConfig {
            max_sessions: n_sessions,
            queue_capacity: 4,
        },
    );
    let mut zids: Vec<SessionId> = (0..n_sessions)
        .map(|_| zserver.admit(TH).expect("slab sized for the fleet"))
        .collect();
    let warm_frames = 8.min(n_frames);
    for i in 0..warm_frames {
        for (s, id) in zids.iter().enumerate() {
            assert!(zserver.submit(*id, streams[s].frame(i), i as u64));
        }
        black_box(zserver.serve(i as u64).len());
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for round in 0..3u64 {
        for (s, id) in zids.iter().enumerate() {
            assert!(zserver.submit(*id, streams[s].frame(round as usize), round));
        }
        black_box(zserver.serve(round).len());
        // Churn one slot per round: retire, re-admit (recycles the warm
        // arena), serve a frame through the fresh tenant.
        let churn = round as usize % n_sessions;
        assert!(zserver.retire(zids[churn]));
        zids[churn] = zserver.admit(TH).expect("freelist slot available");
        assert!(zserver.submit(zids[churn], streams[churn].frame(0), round));
        black_box(zserver.serve(round).len());
    }
    let steady_allocs = ALLOCS.load(Ordering::Relaxed) - before;
    let allocated_slots = zserver.allocated_slots();
    eprintln!(
        "[bench_serving] steady-state allocs {steady_allocs} over 3 rounds with session \
         churn ({allocated_slots} slots allocated, never freed)"
    );

    let session_bytes = server.session_bytes(ids[0]).expect("live session");
    let shared_bytes = server.shared_bytes();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"cpus_available\": {cpus},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"sessions\": {n_sessions},");
    let _ = writeln!(json, "  \"frames_per_session\": {n_frames},");
    let _ = writeln!(json, "  \"max_coalesce\": {MAX_COALESCE},");
    let _ = writeln!(json, "  \"session_bytes\": {session_bytes},");
    let _ = writeln!(json, "  \"shared_bytes\": {shared_bytes},");
    let _ = writeln!(json, "  \"sequential_fps\": {sequential_fps:.1},");
    let _ = writeln!(json, "  \"aggregate_fps\": {aggregate_fps:.1},");
    let _ = writeln!(json, "  \"speedup_vs_sequential\": {speedup:.3},");
    let _ = writeln!(json, "  \"bit_exact_vs_isolated\": {exact},");
    let _ = writeln!(json, "  \"isolated_p50_us\": {isolated_p50_us:.1},");
    let _ = writeln!(json, "  \"isolated_p99_us\": {isolated_p99_us:.1},");
    let _ = writeln!(json, "  \"slo\": {{");
    let _ = writeln!(json, "    \"offered_util\": {util},");
    let _ = writeln!(json, "    \"p50_us\": {slo_p50_us:.1},");
    let _ = writeln!(json, "    \"p99_us\": {slo_p99_us:.1},");
    let _ = writeln!(json, "    \"limit_us\": {slo_limit_us:.1},");
    let _ = writeln!(
        json,
        "    \"gate_enforced\": {},",
        if cpus > 1 { 1 } else { 0 }
    );
    let _ = writeln!(json, "    \"big_frames\": {},", agg.big_frames);
    let _ = writeln!(json, "    \"peak_queue_depth\": {},", agg.peak_queue_depth);
    let _ = writeln!(json, "    \"per_stream\": [\n{per_stream}    ]");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"steady_state_allocs\": {steady_allocs},");
    let _ = writeln!(json, "  \"allocated_slots\": {allocated_slots}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("{json}");

    // ── Gates ──────────────────────────────────────────────────────────
    assert!(exact, "served streams diverged from isolated FrameRunners");
    if cpus > 1 {
        assert!(
            speedup >= 1.5,
            "multiplexed serving only reached {speedup:.2}x of sequential on {cpus} CPUs \
             (need >= 1.5x)"
        );
    } else {
        assert!(
            speedup >= 0.9,
            "multiplexed serving regressed to {speedup:.2}x of sequential on 1 CPU \
             (need >= 0.9x)"
        );
    }
    if cpus > 1 {
        assert!(
            slo_p99_us <= slo_limit_us,
            "served p99 {slo_p99_us:.0} µs blew the SLO ({slo_limit_us:.0} µs = \
             {SLO_FACTOR}x isolated p99)"
        );
    } else {
        eprintln!(
            "[bench_serving] note: SLO gate recorded but not asserted on 1 CPU \
             (collisions serialize; p99/limit = {:.2})",
            slo_p99_us / slo_limit_us
        );
    }
    assert_eq!(steady_allocs, 0, "serving loop allocated in steady state");
    eprintln!("[bench_serving] wrote {out_path}");
}
