//! One-stop summary: regenerates the paper's headline comparisons from the
//! cached (or freshly trained) models on the Known dataset — a compact
//! alternative to reading the full fig5/table2 outputs.

use np_adaptive::sweep::{
    best_at_cycles, cheapest_at_mae, pareto_front, sweep_aux_hlc, sweep_op, sweep_random,
};
use np_adaptive::EnsembleId;
use np_bench::{Experiment, Scale};
use np_dataset::{Environment, GridSpec};

fn main() {
    let mut exp = Experiment::prepare(Environment::Known, Scale::from_env());
    let grid = GridSpec::GRID_8X6;
    let mae = exp.static_mae();
    let big_mae = mae[2].sum();
    let big_cycles = exp.plan_m10.total_cycles() as f64;

    println!("# Headline summary (Known dataset)");
    println!();
    println!(
        "static MAE: F1 {:.3}, F2 {:.3}, M1.0 {:.3}",
        mae[0].sum(),
        mae[1].sum(),
        big_mae
    );
    println!(
        "static latency: F1 {:.2} ms, F2 {:.2} ms, M1.0 {:.2} ms",
        exp.plan_f1.latency_ms(),
        exp.plan_f2.latency_ms(),
        exp.plan_m10.latency_ms()
    );
    println!();

    for ens in [EnsembleId::D1, EnsembleId::D2] {
        let table = exp.eval_table(ens, grid);
        let costs = exp.cost_model(ens, grid);
        let map = exp.error_map(ens, grid);
        let mut all = sweep_op(&table, &costs, 15);
        all.extend(sweep_aux_hlc(&table, &costs, &map, 15));
        let random = sweep_random(&table, &costs, 11);

        println!("## {ens}");
        let front = pareto_front(&all);
        println!("adaptive pareto points: {}", front.len());
        match cheapest_at_mae(&all, big_mae) {
            Some(p) => println!(
                "iso-MAE vs M1.0: {:.1}% cycles via {} (paper D2: -28.03%)",
                100.0 * (p.result.mean_cycles / big_cycles - 1.0),
                p.result.policy
            ),
            None => println!("iso-MAE vs M1.0: not reached"),
        }
        if let Some(p) = best_at_cycles(&all, big_cycles) {
            println!(
                "iso-latency vs M1.0: MAE {:+.2}% via {} (paper D2: -3.15%)",
                100.0 * (p.result.mae_sum / big_mae - 1.0),
                p.result.policy
            );
        }
        // Does the adaptive front dominate Random?
        let mut dominated = 0;
        for r in &random {
            if all.iter().any(|a| {
                a.result.mae_sum <= r.result.mae_sum + 1e-6
                    && a.result.mean_cycles < r.result.mean_cycles - 1.0
            }) {
                dominated += 1;
            }
        }
        println!(
            "random points dominated by adaptive: {dominated}/{}",
            random.len()
        );
        println!();
    }
}
