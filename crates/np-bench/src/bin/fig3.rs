//! Reproduces **Fig. 3**: the 8×6 error map `E(i,j) = MAE_F1(i,j) −
//! MAE_M1.0(i,j)` over the Known validation set, with the ground-truth
//! head cell defining `(i,j)`.
//!
//! Expected shape (paper): the big model's advantage grows toward image
//! borders and peaks at corners.

use np_adaptive::EnsembleId;
use np_bench::{Experiment, Scale};
use np_dataset::{Environment, GridSpec};

fn main() {
    let scale = Scale::from_env();
    let mut exp = Experiment::prepare(Environment::Known, scale);
    let grid = GridSpec::GRID_8X6;
    let map = exp.error_map(EnsembleId::D1, grid);

    println!("# Fig. 3 — 8x6 error map E(i,j) = MAE(F1) - MAE(M1.0), Known validation set");
    println!();
    println!("{}", map.to_ascii());

    // Border/corner structure summary.
    let mut border = Vec::new();
    let mut corner = Vec::new();
    let mut interior = Vec::new();
    for c in 0..grid.n_cells() {
        if map.count(c) == 0 {
            continue;
        }
        if grid.is_corner(c) {
            corner.push(map.value(c));
        } else if grid.is_border(c) {
            border.push(map.value(c));
        } else {
            interior.push(map.value(c));
        }
    }
    let mean = |v: &[f32]| {
        if v.is_empty() {
            f32::NAN
        } else {
            v.iter().sum::<f32>() / v.len() as f32
        }
    };
    println!("mean E interior cells: {:+.4}", mean(&interior));
    println!("mean E border cells:   {:+.4}", mean(&border));
    println!("mean E corner cells:   {:+.4}", mean(&corner));
    println!(
        "border advantage (border+corner mean - interior mean): {:+.4}",
        map.border_advantage()
    );
    println!();
    println!(
        "Paper shape check (difference increases at edges, more at corners): {}",
        if map.border_advantage() > 0.0 {
            "OK"
        } else {
            "MISMATCH"
        }
    );
}
