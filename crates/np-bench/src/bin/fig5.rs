//! Reproduces **Fig. 5**: OP vs the best Aux policies vs the Random
//! baseline on the Known dataset, for both ensembles, plus the paper's
//! headline numbers:
//!
//! * D2-OP at iso-MAE with static M1.0: −28.03 % inference cycles,
//! * D2-OP at iso-latency: −3.15 % MAE,
//! * best overall MAE 0.98 (−6.13 % vs M1.0's 1.04).

use np_bench::figures::run_policy_comparison;
use np_bench::{Experiment, Scale};
use np_dataset::Environment;

fn main() {
    let scale = Scale::from_env();
    let mut exp = Experiment::prepare(Environment::Known, scale);
    run_policy_comparison(&mut exp, "Fig. 5", "Known");
}
