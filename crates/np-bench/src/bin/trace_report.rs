//! Instrumented profiling run: per-layer latency profiles, cycle-model drift
//! and per-frame adaptive-policy telemetry, exported as `BENCH_trace.json`
//! plus a Chrome `chrome://tracing` event file.
//!
//! Requires the `trace` feature (enforced via `required-features`).

fn main() {
    np_bench::trace_report::main();
}
