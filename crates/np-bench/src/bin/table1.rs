//! Reproduces **Table I**: static model metrics (per-variable MAE, params,
//! MACs) for F1, F2 and M1.0.
//!
//! Params/MACs come from the paper-exact architectures (analytic — these
//! should match the paper closely); MAE comes from the trained proxies on
//! the synthetic Known test set (expect matching *ordering*, not absolute
//! values).

use np_bench::{Experiment, Scale};
use np_dataset::Environment;
use np_zoo::ModelId;

fn main() {
    let scale = Scale::from_env();
    let mut exp = Experiment::prepare(Environment::Known, scale);
    let mae = exp.static_mae();

    // Paper reference values: (mae x,y,z,phi,sum, params k, mac M).
    let paper: [(&str, [f64; 5], f64, f64); 3] = [
        ("F1", [0.27, 0.27, 0.28, 0.52, 1.34], 14.8, 4.51),
        ("F2", [0.21, 0.18, 0.24, 0.46, 1.10], 44.5, 7.09),
        ("M1.0", [0.19, 0.14, 0.23, 0.48, 1.04], 46.8, 11.42),
    ];
    let ids = [ModelId::F1, ModelId::F2, ModelId::M10];

    println!("# Table I — static models (measured vs paper)");
    println!();
    println!("| Network | MAE x | MAE y | MAE z | MAE phi | MAE sum | Params | MAC |");
    println!("|---|---|---|---|---|---|---|---|");
    for ((id, report), (name, p_mae, p_params, p_mac)) in
        ids.iter().zip(mae.iter()).zip(paper.iter())
    {
        let desc = id.paper_desc();
        println!(
            "| {} (ours) | {:.2} | {:.2} | {:.2} | {:.2} | **{:.2}** | {:.1} k | {:.2} M |",
            name,
            report.per_var[0],
            report.per_var[1],
            report.per_var[2],
            report.per_var[3],
            report.sum(),
            desc.params() as f64 / 1e3,
            desc.macs() as f64 / 1e6,
        );
        println!(
            "| {} (paper) | {:.2} | {:.2} | {:.2} | {:.2} | **{:.2}** | {:.1} k | {:.2} M |",
            name, p_mae[0], p_mae[1], p_mae[2], p_mae[3], p_mae[4], p_params, p_mac,
        );
    }

    println!();
    let sums: Vec<f32> = mae.iter().map(|r| r.sum()).collect();
    println!(
        "Ordering check (paper: F1 > F2 > M1.0): {:.3} > {:.3} > {:.3} -> {}",
        sums[0],
        sums[1],
        sums[2],
        if sums[0] > sums[1] && sums[1] > sums[2] {
            "OK"
        } else {
            "MISMATCH"
        }
    );
}
