//! Fits the GAP8 cycle model from traced zoo layers; see
//! `np_bench::calibrate`.

fn main() {
    np_bench::calibrate::main();
}
