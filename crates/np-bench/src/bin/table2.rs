//! Reproduces **Table II**: deployment of static and adaptive systems on
//! the (modeled) Crazyflie 2.1 — MAE, latency, % big-model invocations,
//! energy and L2 memory.
//!
//! Row selection follows the paper: for each ensemble, the threshold that
//! maximizes the latency benefit of adaptation is chosen, and the Random
//! policy is pinned to the same MAE for an apples-to-apples comparison.

use np_adaptive::sweep::{cheapest_at_mae, sweep_aux_hlc, sweep_op, sweep_random, OperatingPoint};
use np_adaptive::EnsembleId;
use np_bench::{Experiment, Scale};
use np_dataset::{Environment, GridSpec};
use np_dory::plan::{activation_bytes, ensemble_l2_bytes, weight_bytes};
use np_gap8::power::PowerModel;
use np_zoo::ModelId;

struct Row {
    name: String,
    method: String,
    mae: f32,
    latency_ms: f64,
    frac_big: f64,
    energy_mj: f64,
    memory_kb: f64,
}

fn print_row(r: &Row) {
    println!(
        "| {} | {} | {:.2} | {:.2} ms | {:.1} | {:.2} mJ | {:.0} kB |",
        r.name,
        r.method,
        r.mae,
        r.latency_ms,
        100.0 * r.frac_big,
        r.energy_mj,
        r.memory_kb
    );
}

fn main() {
    let scale = Scale::from_env();
    let mut exp = Experiment::prepare(Environment::Known, scale);
    let power = PowerModel::default();
    let grid = GridSpec::GRID_8X6;

    println!("# Table II — deployment on the modeled Crazyflie 2.1 (GAP8 @ 170 MHz)");
    println!();
    println!("| Models | Method | MAE | Latency | % Big | Energy | Memory |");
    println!("|---|---|---|---|---|---|---|");

    // Static rows.
    let static_mae = exp.static_mae();
    let statics = [
        ("F1", &exp.plan_f1, static_mae[0], 0.0),
        ("F2", &exp.plan_f2, static_mae[1], 0.0),
        ("M1.0", &exp.plan_m10, static_mae[2], 1.0),
    ];
    for (name, plan, mae, big) in statics {
        print_row(&Row {
            name: name.into(),
            method: "Static".into(),
            mae: mae.sum(),
            latency_ms: plan.latency_ms(),
            frac_big: big,
            energy_mj: plan.energy_mj(&power),
            memory_kb: plan.l2_bytes() as f64 / 1024.0,
        });
    }

    let descs = [
        ModelId::F1.paper_desc(),
        ModelId::F2.paper_desc(),
        ModelId::M10.paper_desc(),
        ModelId::Aux(grid).paper_desc(),
    ];
    let mem_kb = |ids: &[usize]| -> f64 {
        let sel: Vec<&np_nn::NetworkDesc> = ids.iter().map(|&i| &descs[i]).collect();
        ensemble_l2_bytes(&sel) as f64 / 1024.0
    };
    // Sanity: every ensemble fits the 512 kB L2, as the paper stresses.
    for (label, ids) in [("D1+aux", vec![0usize, 2, 3]), ("D2", vec![1usize, 2])] {
        let kb = mem_kb(&ids);
        assert!(kb < 512.0, "{label} does not fit L2: {kb} kB");
    }

    // D1: Aux-HLC 8x6 (the paper's best D1 policy) at its
    // max-latency-benefit threshold, vs Random at iso-MAE.
    {
        let table = exp.eval_table(EnsembleId::D1, grid);
        let costs = exp.cost_model(EnsembleId::D1, grid);
        let map = exp.error_map(EnsembleId::D1, grid);
        let hlc = sweep_aux_hlc(&table, &costs, &map, 15);
        let random = sweep_random(&table, &costs, 21);

        // Pick the HLC point with the best latency at MAE no worse than
        // Random@0.5's MAE (the paper's D1 row pairs them at MAE 1.19).
        let rnd_mid = &random[random.len() / 2];
        let target_mae = rnd_mid.result.mae_sum;
        let pick: &OperatingPoint = cheapest_at_mae(&hlc, target_mae)
            .unwrap_or_else(|| hlc.last().expect("non-empty sweep"));
        print_row(&Row {
            name: "D1".into(),
            method: "Random".into(),
            mae: rnd_mid.result.mae_sum,
            latency_ms: rnd_mid.result.latency_ms,
            frac_big: rnd_mid.result.frac_big,
            energy_mj: rnd_mid.result.energy_mj,
            memory_kb: mem_kb(&[0, 2]),
        });
        print_row(&Row {
            name: "D1".into(),
            method: "Aux-HLC 8x6".into(),
            mae: pick.result.mae_sum,
            latency_ms: pick.result.latency_ms,
            frac_big: pick.result.frac_big,
            energy_mj: pick.result.energy_mj,
            memory_kb: mem_kb(&[0, 2, 3]),
        });
        eprintln!(
            "[table2] D1 Aux-HLC vs Random at iso-MAE: latency {:+.1}%, energy {:+.1}% (paper: -8.1%, -8.8%)",
            100.0 * (pick.result.latency_ms / rnd_mid.result.latency_ms - 1.0),
            100.0 * (pick.result.energy_mj / rnd_mid.result.energy_mj - 1.0),
        );
    }

    // D2: OP at the biggest latency gain holding the big model's MAE,
    // vs Random at iso-MAE (which degenerates to p=1, as in the paper).
    {
        let table = exp.eval_table(EnsembleId::D2, grid);
        let costs = exp.cost_model(EnsembleId::D2, grid);
        let op = sweep_op(&table, &costs, 17);
        let random = sweep_random(&table, &costs, 21);
        let big_mae = static_mae[2].sum();

        let rnd_iso = cheapest_at_mae(&random, big_mae)
            .unwrap_or_else(|| random.last().expect("non-empty sweep"));
        print_row(&Row {
            name: "D2".into(),
            method: "Random".into(),
            mae: rnd_iso.result.mae_sum,
            latency_ms: rnd_iso.result.latency_ms,
            frac_big: rnd_iso.result.frac_big,
            energy_mj: rnd_iso.result.energy_mj,
            memory_kb: mem_kb(&[1, 2]),
        });
        if let Some(pick) = cheapest_at_mae(&op, big_mae) {
            print_row(&Row {
                name: "D2".into(),
                method: "OP".into(),
                mae: pick.result.mae_sum,
                latency_ms: pick.result.latency_ms,
                frac_big: pick.result.frac_big,
                energy_mj: pick.result.energy_mj,
                memory_kb: mem_kb(&[1, 2]),
            });
            let big_plan = &exp.plan_m10;
            eprintln!(
                "[table2] D2 OP vs static M1.0 at iso-MAE: latency {:+.1}%, energy {:+.1}% (paper: -28.03%, -31.25%)",
                100.0 * (pick.result.latency_ms / big_plan.latency_ms() - 1.0),
                100.0 * (pick.result.energy_mj / big_plan.energy_mj(&power) - 1.0),
            );
        } else {
            eprintln!("[table2] D2 OP never reaches the big model's MAE {big_mae:.3}");
        }
    }

    println!();
    println!("## Memory accounting detail (int8 weights + shared activation buffer)");
    for (i, id) in [ModelId::F1, ModelId::F2, ModelId::M10, ModelId::Aux(grid)]
        .iter()
        .enumerate()
    {
        println!(
            "- {}: weights {:.0} kB, peak activations {:.0} kB",
            id.name(),
            weight_bytes(&descs[i]) as f64 / 1024.0,
            activation_bytes(&descs[i]) as f64 / 1024.0,
        );
    }
}
