//! Benchmark regression diff: fresh `BENCH_*.json` vs committed baseline.
//!
//! Benchmarks that only ever *overwrite* their JSON output silently absorb
//! regressions: the new numbers become the new normal at the next commit.
//! This tool makes the delta visible. It parses two benchmark JSON files
//! with a small hand-rolled parser (the workspace deliberately has no JSON
//! dependency), flattens every numeric leaf to a `path = value` entry,
//! and prints a per-entry delta table.
//!
//! Direction is inferred from the leaf name: `*_ns` and `alloc*` entries
//! are "lower is better", `*mac_per_s*` and `*speedup*` are "higher is
//! better", everything else is neutral (reported, never flagged). Entries
//! that moved more than 10% in the bad direction are flagged with `WARN`.
//!
//! By default the exit code is always 0: machine-to-machine variance
//! makes a hard gate on micro-benchmarks a flaky gate, so the contract
//! is *warn, don't fail*. With `--strict` the contract flips — any
//! flagged regression exits 1, which is what `ci.sh` runs on the
//! reference box where baseline and fresh numbers come from the same
//! machine and the benchmarks report best-of-N times.
//!
//! Usage:
//!   bench_compare [--strict] <baseline.json> <fresh.json> [<baseline2> <fresh2> ...]

use std::collections::BTreeMap;

/// The subset of JSON this tool understands — everything the BENCH_*
/// emitters produce.
#[derive(Debug, Clone)]
enum Json {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // The emitters never escape anything beyond this set.
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(&c) => out.push(c as char),
                        None => return Err("truncated escape".into()),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    out.push(c as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("bad array at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("bad object at byte {}", self.pos)),
            }
        }
    }
}

fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at {}", p.pos));
    }
    Ok(v)
}

/// A human-readable segment for an array element: prefer an identifying
/// field (`shape`, `model`, `name`, `threads`) over a bare index.
fn element_label(v: &Json, index: usize) -> String {
    if let Json::Obj(fields) = v {
        for key in ["shape", "model", "name", "label", "threads"] {
            if let Some((_, val)) = fields.iter().find(|(k, _)| k == key) {
                match val {
                    Json::Str(s) => return s.clone(),
                    Json::Num(n) => return format!("{key}{n}"),
                    _ => {}
                }
            }
        }
    }
    format!("[{index}]")
}

/// Flattens every numeric leaf to `path -> value`. Booleans flatten to
/// 0/1 so flag flips (e.g. single-CPU skip markers) show up in the diff.
fn flatten(v: &Json, prefix: &str, out: &mut BTreeMap<String, f64>) {
    match v {
        Json::Num(n) => {
            out.insert(prefix.to_string(), *n);
        }
        Json::Bool(b) => {
            out.insert(prefix.to_string(), *b as u8 as f64);
        }
        Json::Obj(fields) => {
            for (k, val) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}/{k}")
                };
                flatten(val, &path, out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let path = format!("{prefix}/{}", element_label(item, i));
                flatten(item, &path, out);
            }
        }
        Json::Str(_) | Json::Null => {}
    }
}

/// Which direction is a *regression* for this entry, by leaf name.
#[derive(PartialEq)]
enum Direction {
    LowerIsBetter,
    HigherIsBetter,
    Neutral,
}

fn direction(path: &str) -> Direction {
    let leaf = path.rsplit('/').next().unwrap_or(path);
    if leaf.ends_with("_ns") || leaf == "ns" || leaf.contains("alloc") || leaf.contains("bytes") {
        Direction::LowerIsBetter
    } else if leaf.contains("mac_per_s") || leaf.contains("speedup") || leaf.contains("fps") {
        Direction::HigherIsBetter
    } else {
        Direction::Neutral
    }
}

const REGRESSION_THRESHOLD: f64 = 0.10;

/// One flagged entry, kept so the final warning can say *which* metric
/// regressed and by how much — a bare count forces the reader to scroll
/// back through the full delta table to find the offender.
struct Regression {
    path: String,
    baseline: f64,
    fresh: f64,
    delta: f64,
}

fn compare_pair(baseline_path: &str, fresh_path: &str) -> Result<Vec<Regression>, String> {
    let base_text =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    let fresh_text =
        std::fs::read_to_string(fresh_path).map_err(|e| format!("{fresh_path}: {e}"))?;
    let mut base = BTreeMap::new();
    let mut fresh = BTreeMap::new();
    flatten(&parse(&base_text)?, "", &mut base);
    flatten(&parse(&fresh_text)?, "", &mut fresh);

    println!("== {baseline_path} -> {fresh_path}");
    println!(
        "{:<64} {:>14} {:>14} {:>9}",
        "entry", "baseline", "fresh", "delta"
    );
    let mut regressions = Vec::new();
    for (path, &b) in &base {
        let Some(&f) = fresh.get(path) else {
            println!("{path:<64} {b:>14.1} {:>14} {:>9}", "(gone)", "-");
            continue;
        };
        let delta = if b != 0.0 { (f - b) / b } else { 0.0 };
        let bad = match direction(path) {
            Direction::LowerIsBetter => delta > REGRESSION_THRESHOLD,
            Direction::HigherIsBetter => delta < -REGRESSION_THRESHOLD,
            Direction::Neutral => false,
        };
        let flag = if bad { "  WARN regression" } else { "" };
        println!(
            "{path:<64} {b:>14.1} {f:>14.1} {:>+8.1}%{flag}",
            delta * 100.0
        );
        if bad {
            regressions.push(Regression {
                path: path.clone(),
                baseline: b,
                fresh: f,
                delta,
            });
        }
    }
    for path in fresh.keys().filter(|p| !base.contains_key(*p)) {
        println!("{path:<64} {:>14} {:>14.1}", "(new)", fresh[path]);
    }
    Ok(regressions)
}

fn main() {
    let mut strict = false;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--strict" {
                strict = true;
                false
            } else {
                true
            }
        })
        .collect();
    if args.is_empty() || !args.len().is_multiple_of(2) {
        eprintln!(
            "usage: bench_compare [--strict] <baseline.json> <fresh.json> \
             [<baseline2> <fresh2> ...]"
        );
        std::process::exit(2);
    }
    let mut regressions = Vec::new();
    for pair in args.chunks(2) {
        match compare_pair(&pair[0], &pair[1]) {
            Ok(mut r) => regressions.append(&mut r),
            Err(e) => eprintln!("[bench_compare] skipping pair: {e}"),
        }
        println!();
    }
    if !regressions.is_empty() {
        eprintln!(
            "[bench_compare] {} entr{} regressed by more than {:.0}%:",
            regressions.len(),
            if regressions.len() == 1 { "y" } else { "ies" },
            REGRESSION_THRESHOLD * 100.0
        );
        for r in &regressions {
            eprintln!(
                "[bench_compare]   {}: {:.1} -> {:.1} ({:+.1}%)",
                r.path,
                r.baseline,
                r.fresh,
                r.delta * 100.0
            );
        }
        if strict {
            eprintln!("[bench_compare] --strict: failing the run");
            std::process::exit(1);
        }
        eprintln!(
            "[bench_compare] warning only — micro-benchmarks vary across machines; exit stays 0"
        );
    } else {
        eprintln!(
            "[bench_compare] no regressions beyond {:.0}%",
            REGRESSION_THRESHOLD * 100.0
        );
    }
}
