//! Ablations of the design choices called out in DESIGN.md §5:
//!
//! 1. OP hard-frame output: ensemble (average) vs big-only.
//! 2. OP score from all four outputs vs position-only (x, y, z).
//! 3. PTQ int8 vs f32 proxies: MAE delta of the deployment arithmetic.
//! 4. Tiling objective: MaxTile vs MinDma cycles per network.

use np_adaptive::features::Backend;
use np_adaptive::policy::{AdaptivePolicy, Decision};
use np_adaptive::{evaluate_policy, EnsembleId, FrameFeatures, OpPolicy};
use np_bench::{Experiment, Scale};
use np_dataset::{Environment, GridSpec};
use np_dory::plan::deploy_with_objective;
use np_dory::tiling::TilingObjective;
use np_gap8::Gap8Config;
use np_quant::QuantizedNetwork;
use np_zoo::ModelId;

/// OP variant that replaces the hard-frame ensemble with big-only output.
struct OpBigOnly(OpPolicy);

impl AdaptivePolicy for OpBigOnly {
    fn name(&self) -> String {
        format!("{}-bigonly", self.0.name())
    }
    fn reset(&mut self) {
        self.0.reset();
    }
    fn decide(&mut self, frame: &FrameFeatures) -> Decision {
        match self.0.decide(frame) {
            Decision::Ensemble => Decision::Big,
            d => d,
        }
    }
}

/// OP variant scoring only the position outputs (x, y, z), not phi.
struct OpPositionOnly {
    th: f32,
    prev: Option<f32>,
}

impl AdaptivePolicy for OpPositionOnly {
    fn name(&self) -> String {
        format!("OP-xyz(th={:.3})", self.th)
    }
    fn reset(&mut self) {
        self.prev = None;
    }
    fn decide(&mut self, frame: &FrameFeatures) -> Decision {
        let sum: f32 = frame.small_scaled[..3].iter().sum();
        let d = match self.prev {
            None => Decision::Ensemble,
            Some(p) if (sum - p).abs() > self.th => Decision::Ensemble,
            _ => Decision::Small,
        };
        self.prev = Some(sum);
        d
    }
}

fn main() {
    let scale = Scale::from_env();
    let mut exp = Experiment::prepare(Environment::Known, scale);
    let grid = GridSpec::GRID_8X6;
    let table = exp.eval_table(EnsembleId::D2, grid);
    let costs = exp.cost_model(EnsembleId::D2, grid);

    println!("# Ablations");

    // --- 1 & 2: OP output mode and score features, matched thresholds ---
    println!();
    println!("## OP variants (D2, Known test set)");
    println!("| variant | th | MAE | mean cycles | % big |");
    println!("|---|---|---|---|---|");
    for th in [0.02f32, 0.05, 0.1, 0.2] {
        let mut standard = OpPolicy::new(th);
        let mut big_only = OpBigOnly(OpPolicy::new(th));
        let mut xyz = OpPositionOnly { th, prev: None };
        for (label, policy) in [
            ("ensemble", &mut standard as &mut dyn AdaptivePolicy),
            ("big-only", &mut big_only),
            ("xyz-score", &mut xyz),
        ] {
            let r = evaluate_policy(policy, &table, &costs);
            println!(
                "| {label} | {th:.2} | {:.4} | {:.0} | {:.1} |",
                r.mae_sum,
                r.mean_cycles,
                100.0 * r.frac_big
            );
        }
    }

    // --- 3: int8 vs f32 MAE ---
    println!();
    println!("## PTQ int8 vs f32 (test-set MAE sum)");
    println!("| model | f32 | int8 | delta |");
    println!("|---|---|---|---|");
    let data = exp.data.clone();
    let test = data.test_indices();
    let calib_idx: Vec<usize> = data.train_indices().into_iter().take(64).collect();
    let calib = data.images_tensor(&calib_idx);
    let scaler = *data.scaler();
    for (name, model) in [
        ("F1", exp.f1.clone()),
        ("F2", exp.f2.clone()),
        ("M1.0", exp.m10.clone()),
    ] {
        let mut fp = model.clone();
        let fp_mae = np_zoo::evaluate_mae(&mut fp, &data, &test).sum();
        let qnet = QuantizedNetwork::quantize(&model, &calib);
        let mut backend = Backend::Quantized(&qnet);
        let outs = backend.outputs(&data, &test);
        let preds: Vec<np_dataset::Pose> = outs
            .iter()
            .map(|o| scaler.unscale([o[0], o[1], o[2], o[3]]))
            .collect();
        let q_mae = np_zoo::train::mae_of_predictions(&preds, &data, &test).sum();
        println!(
            "| {name} | {fp_mae:.4} | {q_mae:.4} | {:+.4} |",
            q_mae - fp_mae
        );
    }

    // --- 4: tiling objective ---
    println!();
    println!("## Tiling objective (paper-exact architectures)");
    println!("| network | MaxTile cycles | MinDma cycles | delta % |");
    println!("|---|---|---|---|");
    let gap8 = Gap8Config::default();
    for id in [ModelId::F1, ModelId::F2, ModelId::M10, ModelId::Aux(grid)] {
        let desc = id.paper_desc();
        let a = deploy_with_objective(&desc, &gap8, TilingObjective::MaxTile)
            .expect("fits")
            .total_cycles();
        let b = deploy_with_objective(&desc, &gap8, TilingObjective::MinDma)
            .expect("fits")
            .total_cycles();
        println!(
            "| {} | {a} | {b} | {:+.2} |",
            id.name(),
            100.0 * (b as f64 / a as f64 - 1.0)
        );
    }

    // --- 5: extension policies (beyond the paper) ---
    println!();
    println!("## Extension policies vs plain OP (D2, matched thresholds)");
    println!("| policy | th | MAE | mean cycles | % big |");
    println!("|---|---|---|---|---|");
    for th in [0.05f32, 0.1] {
        let mut plain = np_adaptive::OpPolicy::new(th);
        let mut ema = np_adaptive::OpEmaPolicy::new(th, 0.5);
        let mut hyst = np_adaptive::Hysteresis::new(np_adaptive::OpPolicy::new(th), 2);
        for (label, policy) in [
            ("OP", &mut plain as &mut dyn AdaptivePolicy),
            ("OP-EMA(0.5)", &mut ema),
            ("OP+hysteresis(2)", &mut hyst),
        ] {
            let r = evaluate_policy(policy, &table, &costs);
            println!(
                "| {label} | {th:.2} | {:.4} | {:.0} | {:.1} |",
                r.mae_sum,
                r.mean_cycles,
                100.0 * r.frac_big
            );
        }
    }

    // Echo the EvalTable size so the run is self-describing.
    eprintln!("[ablation] evaluated on {} test frames", table.n_frames());
}
