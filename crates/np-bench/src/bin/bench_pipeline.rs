//! End-to-end inference benchmark emitting `BENCH_pipeline.json`.
//!
//! Measures what the plan-once/run-many runtime actually buys per frame:
//!
//! 1. **Alloc-per-frame vs prepacked** — `QuantizedNetwork::run_int_with`
//!    (fresh `Vec`s for im2col scratch, accumulators and every layer
//!    output) against `QuantizedProgram::run_int_prepacked` (planned
//!    arena, packed weight panels) on the F1 / F2 / M1.0 proxies, with
//!    wall time and heap-allocation counts from a counting global
//!    allocator.
//! 2. **Streaming ensembles** — the paper's D1 = (F1, M1.0) and
//!    D2 = (F2, M1.0) adaptive loops driven by [`FrameRunner`] over a
//!    synthetic frame stream, reporting per-frame latency, big-model
//!    rate, and steady-state allocations (which must be zero).
//!
//! Numbers are machine-local; `cpus_available` is recorded so a reader
//! can tell which regime a checked-in baseline came from.
//!
//! Usage: `cargo run --release -p np-bench --bin bench_pipeline [out.json]`

use np_adaptive::FrameRunner;
use np_nn::init::SmallRng;
use np_quant::{QScratch, QuantizedNetwork};
use np_tensor::parallel::Pool;
use np_tensor::Tensor;
use np_zoo::channels::PROXY_INPUT;
use np_zoo::ModelId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const WARMUP: usize = 3;
const REPS: usize = 30;
const STREAM_FRAMES: usize = 60;

fn pseudo_frames(n: usize, seed: u64) -> Tensor {
    let (c, h, w) = PROXY_INPUT;
    let mut s = seed + 1;
    let data: Vec<f32> = (0..n * c * h * w)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 40) as i32 % 200) as f32 / 100.0 - 1.0
        })
        .collect();
    Tensor::from_vec(&[n, c, h, w], data)
}

/// Best-of-`REPS` wall time of `f` in nanoseconds.
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e9);
    }
    best
}

/// Heap allocations performed by one call of `f` (call after warm-up).
fn allocs_of(mut f: impl FnMut()) -> usize {
    f(); // warm-up: let scratch growth happen outside the measurement
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool = Pool::serial();
    let calib = pseudo_frames(4, 7);
    let frame = pseudo_frames(1, 8);

    let mut rng = SmallRng::seed(3);
    let nets: Vec<(ModelId, QuantizedNetwork)> = [ModelId::F1, ModelId::F2, ModelId::M10]
        .into_iter()
        .map(|id| {
            let net = id.build_proxy(&mut rng);
            (id, QuantizedNetwork::quantize(&net, &calib))
        })
        .collect();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"cpus_available\": {cpus},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(
        json,
        "  \"input_chw\": [{}, {}, {}],",
        PROXY_INPUT.0, PROXY_INPUT.1, PROXY_INPUT.2
    );
    json.push_str("  \"alloc_per_frame_vs_prepacked\": [\n");

    // The per-call path shares the register-blocked kernels with the
    // prepacked path, so kernel time dominates both and the wall-clock gap
    // between them is mostly per-frame packing + allocator traffic. The
    // gate is therefore: prepacked is never meaningfully slower (>=
    // `MIN_SPEEDUP` within measurement noise) and allocates nothing.
    const MIN_SPEEDUP: f64 = 0.9;
    let mut no_regression = true;
    let mut prepacked_alloc_free = true;
    for (i, (id, qnet)) in nets.iter().enumerate() {
        let program = qnet.compile(PROXY_INPUT);
        let mut scratch = QScratch::for_program(&program);
        let q = qnet.input_params().quantize_slice(frame.as_slice());

        // Both conv weight formats, compiled side by side: the i8 format
        // halves the packed conv panels (one byte per weight lane) and
        // swaps the i16 im2row staging buffer for a u8 one, so both the
        // flash-analogue (packed bytes) and the RAM-analogue (scratch
        // bytes) shrink. The timed `program` above uses the host-default
        // format; these two report what each format costs regardless of
        // which one the default picked.
        let p16 = qnet.compile_for_isa(PROXY_INPUT, np_quant::KernelIsa::ScalarI16);
        let p8 = qnet.compile_for_isa(PROXY_INPUT, np_quant::KernelIsa::Avx2I8);
        let scratch16 = QScratch::for_program(&p16).bytes();
        let scratch8 = QScratch::for_program(&p8).bytes();

        let alloc_ns = time_ns(|| {
            black_box(qnet.run_int_with(pool, black_box(&q), PROXY_INPUT));
        });
        let prepacked_ns = time_ns(|| {
            black_box(program.run_int_prepacked(pool, &mut scratch, black_box(&q)));
        });
        let allocs_per_frame = allocs_of(|| {
            black_box(qnet.run_int_with(pool, black_box(&q), PROXY_INPUT));
        });
        let prepacked_allocs = allocs_of(|| {
            black_box(program.run_int_prepacked(pool, &mut scratch, black_box(&q)));
        });

        let speedup = alloc_ns / prepacked_ns;
        no_regression &= speedup >= MIN_SPEEDUP;
        prepacked_alloc_free &= prepacked_allocs == 0;
        eprintln!(
            "[bench_pipeline] {}: alloc-path {:.0} ns ({} allocs), prepacked {:.0} ns \
             ({} allocs), {:.2}x; packed i16 {} B -> i8 {} B, scratch {} B -> {} B",
            id.name(),
            alloc_ns,
            allocs_per_frame,
            prepacked_ns,
            prepacked_allocs,
            speedup,
            p16.packed_weight_bytes(),
            p8.packed_weight_bytes(),
            scratch16,
            scratch8,
        );
        let _ = writeln!(
            json,
            "    {{\"model\": \"{}\", \"arena_bytes\": {}, \"packed_weight_bytes\": {}, \
             \"packed_weight_bytes_i16\": {}, \"packed_weight_bytes_i8\": {}, \
             \"scratch_bytes_i16\": {scratch16}, \"scratch_bytes_i8\": {scratch8}, \
             \"alloc_path_ns\": {alloc_ns:.0}, \"alloc_path_allocs_per_frame\": {allocs_per_frame}, \
             \"prepacked_ns\": {prepacked_ns:.0}, \"prepacked_allocs_per_frame\": {prepacked_allocs}, \
             \"speedup\": {speedup:.3}}}{}",
            id.name(),
            program.arena_bytes(),
            program.packed_weight_bytes(),
            p16.packed_weight_bytes(),
            p8.packed_weight_bytes(),
            if i + 1 < nets.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");

    // Cross-frame batching on the whole compiled program: the same 8
    // frames processed in groups of B through `run_int_batched` (B=1 is
    // `run_int_prepacked`, so the sweep's first row doubles as the B=1
    // latency guard bench_compare checks against the baseline). On this
    // proxy the depthwise stack — which batching cannot amortize — owns
    // most of the frame, so the whole-model curve is flatter than the
    // panel-kernel sweep in BENCH_kernels.json; both gates here are
    // no-regression plus zero steady-state allocations.
    json.push_str("  \"batched_throughput\": [\n");
    const BATCH_SWEEP: [usize; 4] = [1, 2, 4, 8];
    const BATCH_FRAMES: usize = 8;
    let (c, h, w) = PROXY_INPUT;
    let frame_len = c * h * w;
    let mut batched_no_loss = true;
    let mut batched_alloc_free = true;
    for (i, (id, qnet)) in nets.iter().enumerate() {
        let program = qnet.compile_batched(PROXY_INPUT, BATCH_FRAMES);
        let mut scratch = QScratch::for_program(&program);
        let stream = pseudo_frames(BATCH_FRAMES, 9);
        let qs = qnet.input_params().quantize_slice(stream.as_slice());

        let mut rows = String::new();
        let mut b1_ns = 0.0;
        for &b in BATCH_SWEEP.iter() {
            let groups = BATCH_FRAMES / b;
            let run_all = |scratch: &mut QScratch| {
                for g in 0..groups {
                    let qb = &qs[g * b * frame_len..(g + 1) * b * frame_len];
                    black_box(program.run_int_batched(pool, scratch, black_box(qb), b));
                }
            };
            let ns = time_ns(|| run_all(&mut scratch));
            let allocs = allocs_of(|| run_all(&mut scratch));
            if b == 1 {
                b1_ns = ns;
            }
            let speedup = b1_ns / ns;
            if b == BATCH_FRAMES {
                batched_no_loss &= speedup >= 0.95;
            }
            batched_alloc_free &= allocs == 0;
            let per_frame_ns = ns / BATCH_FRAMES as f64;
            eprintln!(
                "[bench_pipeline] {} B={b}: {per_frame_ns:.0} ns/frame \
                 ({speedup:.2}x vs B=1, {allocs} allocs)",
                id.name()
            );
            let _ = writeln!(
                rows,
                "      {{\"batch\": {b}, \"per_frame_ns\": {per_frame_ns:.0}, \
                 \"aggregate_speedup_vs_b1\": {speedup:.3}, \
                 \"steady_state_allocs\": {allocs}}}{}",
                if b != *BATCH_SWEEP.last().expect("non-empty sweep") {
                    ","
                } else {
                    ""
                },
            );
        }
        let _ = writeln!(
            json,
            "    {{\"model\": \"{}\", \"frames\": {BATCH_FRAMES}, \
             \"batched_arena_bytes\": {}, \"by_batch\": [\n{rows}    ]}}{}",
            id.name(),
            program.batched_arena_bytes(),
            if i + 1 < nets.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"streaming_ensembles\": [\n");

    // A stream with motion on every 4th frame so both policy paths run.
    let still = pseudo_frames(1, 21);
    let moving = pseudo_frames(1, 22);
    let ensembles = [("D1", ModelId::F1), ("D2", ModelId::F2)];
    for (i, (name, little_id)) in ensembles.iter().enumerate() {
        let little = &nets.iter().find(|(id, _)| id == little_id).unwrap().1;
        let big = &nets.iter().find(|(id, _)| *id == ModelId::M10).unwrap().1;
        let mut runner = FrameRunner::new(little, big, PROXY_INPUT, 0.05, pool);

        // Warm-up: first frame always runs the full ensemble.
        let _ = runner.run_frame(still.as_slice());
        let before_allocs = ALLOCS.load(Ordering::Relaxed);
        let t = Instant::now();
        let mut big_frames = 0usize;
        for f in 0..STREAM_FRAMES {
            let x = if f % 4 == 0 { &moving } else { &still };
            let r = runner.run_frame(x.as_slice());
            if r.decision.runs_big() {
                big_frames += 1;
            }
            black_box(r.scaled);
        }
        let total_ns = t.elapsed().as_secs_f64() * 1e9;
        let steady_allocs = ALLOCS.load(Ordering::Relaxed) - before_allocs;
        let per_frame_ns = total_ns / STREAM_FRAMES as f64;
        let big_rate = big_frames as f64 / STREAM_FRAMES as f64;
        eprintln!(
            "[bench_pipeline] {name}: {per_frame_ns:.0} ns/frame, big rate {big_rate:.2}, \
             {steady_allocs} allocs over {STREAM_FRAMES} steady frames, arena {} B",
            runner.arena_bytes()
        );
        let _ = writeln!(
            json,
            "    {{\"ensemble\": \"{name}\", \"little\": \"{}\", \"big\": \"M1.0\", \
             \"frames\": {STREAM_FRAMES}, \"per_frame_ns\": {per_frame_ns:.0}, \
             \"big_rate\": {big_rate:.3}, \"steady_state_allocs\": {steady_allocs}, \
             \"shared_arena_bytes\": {}}}{}",
            little_id.name(),
            runner.arena_bytes(),
            if i + 1 < ensembles.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("{json}");
    assert!(
        no_regression,
        "prepacked path regressed below {MIN_SPEEDUP}x of the alloc-per-frame path"
    );
    assert!(
        prepacked_alloc_free,
        "prepacked path allocated in steady state"
    );
    assert!(
        batched_no_loss,
        "run_int_batched lost aggregate throughput at B=8 vs B=1"
    );
    assert!(batched_alloc_free, "batched path allocated in steady state");
    eprintln!("[bench_pipeline] wrote {out_path}");
}
