//! Reproduces **Fig. 6**: the policy comparison of Fig. 5 repeated on the
//! Unseen dataset (different lab, subjects, lighting), demonstrating that
//! the policies generalize.
//!
//! Paper headlines: D1's best is Aux-HLC (9.2% latency reduction vs Random
//! at MAE 1.33); D2-OP reaches the best overall MAE 1.22 (-4.9% vs SoA)
//! and -6.49% latency at iso-MAE with the big model.

use np_bench::figures::run_policy_comparison;
use np_bench::{Experiment, Scale};
use np_dataset::Environment;

fn main() {
    let scale = Scale::from_env();
    let mut exp = Experiment::prepare(Environment::Unseen, scale);
    run_policy_comparison(&mut exp, "Fig. 6", "Unseen");
}
