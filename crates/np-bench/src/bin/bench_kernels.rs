//! Kernel micro-benchmark harness emitting `BENCH_kernels.json`.
//!
//! Two questions, answered with wall time and effective MAC/s:
//!
//! 1. Does the im2col-lowered int8 conv beat the direct loop nest at the
//!    dominant layer shape of every paper network (F1, F2, M1.0)?
//! 2. How does the row-chunked float GEMM scale across pool widths
//!    (`NP_THREADS`-style 1/2/4)?
//!
//! Numbers are measured on the machine that runs the binary. On a
//! single-core container the threaded rows report the scheduling-overhead
//! floor rather than a speedup — the JSON records `cpus_available` so a
//! reader can tell which regime a checked-in baseline came from.
//!
//! Usage: `cargo run --release -p np-bench --bin bench_kernels [out.json]`

use np_quant::kernels::{qconv2d_reference, qconv2d_with, QConvGeometry};
use np_quant::lowering::{patch_stride, u8_lowered_len};
use np_quant::microkernel::{
    fold_offset_bias, kernel_isa, pack_conv_panels, pack_conv_panels_i8,
    qconv_panels_i8_batch_into, qconv_panels_i8_into, qconv_panels_into, KernelIsa, NR_I8,
};
use np_quant::requant::FixedMultiplier;

fn bias_for(oc: usize) -> Vec<i32> {
    vec![100i32; oc]
}
use np_tensor::matmul::matmul_acc_with;
use np_tensor::parallel::Pool;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Dominant conv layer of each paper network at the 96×160 deployment
/// resolution (same table as `benches/kernels.rs`).
const PAPER_SHAPES: [(&str, QConvGeometry, usize, usize); 3] = [
    (
        "F1_stem_5x5",
        QConvGeometry {
            in_channels: 1,
            out_channels: 32,
            kernel: 5,
            stride: 2,
            padding: 2,
        },
        96,
        160,
    ),
    (
        "F2_block_3x3",
        QConvGeometry {
            in_channels: 40,
            out_channels: 16,
            kernel: 3,
            stride: 2,
            padding: 1,
        },
        24,
        40,
    ),
    (
        "M1.0_pointwise",
        QConvGeometry {
            in_channels: 60,
            out_channels: 60,
            kernel: 1,
            stride: 1,
            padding: 0,
        },
        12,
        20,
    ),
];

/// Panel-microkernel shapes for the cross-frame batching sweep, as
/// `(label, out_channels, patch, output pixels per frame)`. All four are
/// GEMV-shaped M1.0 layers — few output columns per frame, so at B=1 the
/// packed weight panels are re-streamed for only a handful of columns:
///
/// * the dominant pointwise block at deployment (12×20) and proxy (3×5)
///   resolution,
/// * the 4-output regression head as a 1-column "conv" (pure GEMV), and
/// * the deployment-width MobileNet tail pointwise (1024×1024 at 3×5),
///   whose 2 MiB packed panel set does not fit any L1/L2 and is therefore
///   genuinely re-streamed from outer cache levels every frame.
const BATCH_SHAPES: [(&str, usize, usize, usize); 4] = [
    ("M1.0_pointwise", 60, 60, 240),
    ("M1.0_pointwise_proxy", 60, 60, 15),
    ("M1.0_head_gemv", 4, 900, 1),
    ("M1.0_deploy_tail_pw", 1024, 1024, 15),
];

/// Frames processed per measurement in the batch sweep; every batch size
/// divides it so each row does the same total work.
const BATCH_FRAMES: usize = 8;
const BATCH_SWEEP: [usize; 4] = [1, 2, 4, 8];

const WARMUP: usize = 3;
const REPS: usize = 30;

fn pseudo_f32(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed + 1;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 40) as i32 % 200) as f32 / 100.0 - 1.0
        })
        .collect()
}

fn pseudo_i8(n: usize, seed: u64) -> Vec<i8> {
    let mut s = seed + 1;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 40) as u8 as i8
        })
        .collect()
}

/// Best-of-`REPS` wall time of `f` in nanoseconds (minimum filters out
/// scheduler noise, the standard micro-benchmark estimator).
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e9);
    }
    best
}

fn mac_per_s(macs: u64, ns: f64) -> f64 {
    macs as f64 / (ns * 1e-9)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"cpus_available\": {cpus},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    json.push_str("  \"qconv2d_direct_vs_lowered\": [\n");

    let mut all_lowered_win = true;
    for (i, (label, geo, h, w)) in PAPER_SHAPES.iter().enumerate() {
        let (geo, h, w) = (*geo, *h, *w);
        let qx = pseudo_i8(geo.in_channels * h * w, 11);
        let qw = pseudo_i8(
            geo.out_channels * geo.in_channels * geo.kernel * geo.kernel,
            12,
        );
        let qb = vec![100i32; geo.out_channels];
        let qm = vec![FixedMultiplier::from_real(0.003); geo.out_channels];
        let (oh, ow) = geo.out_hw(h, w);
        let macs = (geo.out_channels * oh * ow * geo.in_channels * geo.kernel * geo.kernel) as u64;

        let direct_ns = time_ns(|| {
            black_box(qconv2d_reference(
                black_box(&qx),
                h,
                w,
                -3,
                geo,
                &qw,
                &qb,
                &qm,
                5,
                true,
            ));
        });
        let lowered_ns = time_ns(|| {
            black_box(qconv2d_with(
                Pool::serial(),
                black_box(&qx),
                h,
                w,
                -3,
                geo,
                &qw,
                &qb,
                &qm,
                5,
                true,
            ));
        });
        let speedup = direct_ns / lowered_ns;
        all_lowered_win &= speedup > 1.0;
        eprintln!(
            "[bench_kernels] {label}: direct {direct_ns:.0} ns, lowered {lowered_ns:.0} ns \
             ({speedup:.2}x, {:.1} MMAC/s lowered)",
            mac_per_s(macs, lowered_ns) / 1e6
        );
        let _ = writeln!(
            json,
            "    {{\"shape\": \"{label}\", \"macs\": {macs}, \
             \"direct_ns\": {direct_ns:.0}, \"lowered_ns\": {lowered_ns:.0}, \
             \"direct_mac_per_s\": {:.0}, \"lowered_mac_per_s\": {:.0}, \
             \"speedup\": {speedup:.3}}}{}",
            mac_per_s(macs, direct_ns),
            mac_per_s(macs, lowered_ns),
            if i + 1 < PAPER_SHAPES.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");

    // On a single-CPU container every pool width degrades to the serial
    // path, so t2/t4 rows would all read 1.00x and say nothing about
    // scaling — skip them and record that we did, instead of checking in
    // numbers that look like a (non-)result.
    let thread_widths: &[usize] = if cpus == 1 { &[1] } else { &[1, 2, 4] };
    let _ = writeln!(
        json,
        "  \"gemm_threads_skipped_single_cpu\": {},",
        cpus == 1
    );
    if cpus == 1 {
        eprintln!(
            "[bench_kernels] single CPU: skipping gemm pool widths 2 and 4 \
             (rows would be meaningless 1.00x serial reruns)"
        );
    }
    json.push_str("  \"gemm_by_pool_width\": [\n");

    for (i, (label, geo, h, w)) in PAPER_SHAPES.iter().enumerate() {
        let (geo, h, w) = (*geo, *h, *w);
        let (oh, ow) = geo.out_hw(h, w);
        let (m, k, n) = (
            geo.out_channels,
            geo.in_channels * geo.kernel * geo.kernel,
            oh * ow,
        );
        let macs = (m * k * n) as u64;
        let ga = pseudo_f32(m * k, 13);
        let gb = pseudo_f32(k * n, 14);
        let mut base_ns = 0.0;
        let mut entries = String::new();
        for &threads in thread_widths {
            let pool = Pool::new(threads);
            let ns = time_ns(|| {
                let mut gc = vec![0.0f32; m * n];
                matmul_acc_with(pool, black_box(&ga), &gb, &mut gc, m, k, n);
                black_box(&gc);
            });
            if threads == 1 {
                base_ns = ns;
            }
            let speedup = base_ns / ns;
            eprintln!(
                "[bench_kernels] gemm {label} ({m}x{k}x{n}) t{threads}: {ns:.0} ns \
                 ({speedup:.2}x vs t1, {:.1} MMAC/s)",
                mac_per_s(macs, ns) / 1e6
            );
            let _ = writeln!(
                entries,
                "      {{\"threads\": {threads}, \"ns\": {ns:.0}, \
                 \"mac_per_s\": {:.0}, \"speedup_vs_serial\": {speedup:.3}}}{}",
                mac_per_s(macs, ns),
                if threads != *thread_widths.last().expect("non-empty widths") {
                    ","
                } else {
                    ""
                },
            );
        }
        let _ = writeln!(
            json,
            "    {{\"shape\": \"{label}\", \"m\": {m}, \"k\": {k}, \"n\": {n}, \
             \"macs\": {macs}, \"by_threads\": [\n{entries}    ]}}{}",
            if i + 1 < PAPER_SHAPES.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");

    // i16 vs raw-i8 panel kernel, side by side on the same single-frame
    // GEMM shapes: same columns, same requant, the only difference is the
    // weight format (widened i16 panels + 4×2 tile vs raw i8 panels +
    // 4×16 offset-binary tile) — plus the packed footprint each format
    // carries. The i8 rows are what `run_int_prepacked` executes on an
    // AVX2 host; the i16 rows are the pre-existing path kept for
    // non-AVX2 fallback.
    json.push_str("  \"i16_vs_i8_panel_kernel\": [\n");
    let mut i8_speedups: Vec<(&str, f64)> = Vec::new();
    for (i, (label, oc, patch, cols)) in BATCH_SHAPES.iter().enumerate() {
        let (oc, patch, cols) = (*oc, *patch, *cols);
        let ps = patch_stride(patch);
        let in_zp = -3i32;
        let weight = pseudo_i8(oc * patch, 31);
        let bias = vec![100i32; oc];
        let mults = vec![FixedMultiplier::from_real(0.003); oc];
        let vals = pseudo_i8(cols * patch, 32);

        let packed16 = pack_conv_panels(&weight, oc, patch);
        let mut low16 = vec![0i16; cols * ps];
        for col in 0..cols {
            for r in 0..patch {
                low16[col * ps + r] = (vals[col * patch + r] as i32 - in_zp) as i16;
            }
        }
        let packed8 = pack_conv_panels_i8(&weight, oc, patch);
        let fb = fold_offset_bias(&bias, &weight, oc, patch, in_zp);
        let mut low8 = vec![(in_zp + 128) as u8; u8_lowered_len(cols, patch)];
        for col in 0..cols {
            for r in 0..patch {
                low8[(col / NR_I8) * NR_I8 * ps
                    + (r / 2) * 2 * NR_I8
                    + 2 * (col % NR_I8)
                    + (r & 1)] = (vals[col * patch + r] as u8) ^ 0x80;
            }
        }

        let macs = (oc * patch * cols) as u64;
        let mut out = vec![0i8; oc * cols];
        let i16_ns = time_ns(|| {
            qconv_panels_into(
                Pool::serial(),
                &packed16,
                patch,
                black_box(&low16),
                &bias,
                &mults,
                5,
                true,
                &mut out,
            );
            black_box(&out);
        });
        let mut out8 = vec![0i8; oc * cols];
        let i8_ns = time_ns(|| {
            qconv_panels_i8_into(
                Pool::serial(),
                &packed8,
                patch,
                black_box(&low8),
                &fb,
                &mults,
                5,
                true,
                &mut out8,
            );
            black_box(&out8);
        });
        assert_eq!(out, out8, "i16 and i8 kernels disagree on {label}");
        let speedup = i16_ns / i8_ns;
        i8_speedups.push((label, speedup));
        let i16_bytes = 2 * packed16.len() + 4 * bias.len();
        let i8_bytes = packed8.len() + 4 * fb.len();
        eprintln!(
            "[bench_kernels] i16-vs-i8 {label}: i16 {i16_ns:.0} ns ({:.1} MMAC/s), \
             i8 {i8_ns:.0} ns ({:.1} MMAC/s) — {speedup:.2}x, packed {} -> {} B",
            mac_per_s(macs, i16_ns) / 1e6,
            mac_per_s(macs, i8_ns) / 1e6,
            i16_bytes,
            i8_bytes,
        );
        let _ = writeln!(
            json,
            "    {{\"shape\": \"{label}\", \"out_channels\": {oc}, \"patch\": {patch}, \
             \"cols\": {cols}, \"macs\": {macs}, \
             \"i16_ns\": {i16_ns:.0}, \"i8_ns\": {i8_ns:.0}, \
             \"i16_mac_per_s\": {:.0}, \"i8_mac_per_s\": {:.0}, \
             \"i8_speedup\": {speedup:.3}, \
             \"i16_packed_bytes\": {i16_bytes}, \"i8_packed_bytes\": {i8_bytes}}}{}",
            mac_per_s(macs, i16_ns),
            mac_per_s(macs, i8_ns),
            if i + 1 < BATCH_SHAPES.len() { "," } else { "" },
        );
    }
    json.push_str("  ],\n");

    // Cross-frame batching: aggregate throughput for the same BATCH_FRAMES
    // frames when they are processed in groups of B through the batched
    // raw-i8 panel kernel (B=1 uses the single-frame kernel, i.e. the
    // exact code path `run_int_prepacked` takes on an AVX2 host).
    // `aggregate_speedup_vs_b1` is the frames-per-second ratio the batch
    // collector buys at each group size. With 16-column tiles, frames
    // inside a group share whole weight-panel streams across a 256-column
    // pixel block, so the slope at B≥4 is the weight-amortization the
    // ROADMAP's >2× batched target needs.
    //
    // The curve is regime-dependent and the JSON says so: on a host whose
    // packed panels sit in cache and whose single-frame kernel is already
    // compute-bound (this container: 1 CPU, AVX2), batching amortizes only
    // per-panel setup and NR-tail columns, so the measured win is small.
    // The ≥2× target applies where B=1 genuinely re-streams weight panels
    // per frame (DRAM-resident weights, or a GAP8-class device refetching
    // L2 weights per invocation) or where extra columns unlock idle cores.
    let _ = writeln!(
        json,
        "  \"panel_batch_regime\": \"{}\",",
        if cpus == 1 {
            "single-cpu compute-bound: speedup_vs_b1 measures setup/tail \
             amortization only, not weight-streaming relief"
        } else {
            "multi-cpu: speedup_vs_b1 includes thread amortization from \
             batch-widened columns"
        }
    );
    json.push_str("  \"panel_batch_sweep\": [\n");
    let mut batch8_speedups: Vec<(&str, f64)> = Vec::new();
    for (i, (label, oc, patch, cols)) in BATCH_SHAPES.iter().enumerate() {
        let (oc, patch, cols) = (*oc, *patch, *cols);
        let ps = patch_stride(patch);
        let in_zp = -3i32;
        let weight = pseudo_i8(oc * patch, 21);
        let packed = pack_conv_panels_i8(&weight, oc, patch);
        let fb = fold_offset_bias(&bias_for(oc), &weight, oc, patch, in_zp);
        let mults = vec![FixedMultiplier::from_real(0.003); oc];
        // Per-frame-blocked batched u8 lowering: frame b owns the slice
        // [b*flen, (b+1)*flen) — byte-identical to eight independent
        // single-frame lowerings laid end to end, in the column-block
        // interleave the i8 kernel consumes.
        let flen = u8_lowered_len(cols, patch);
        let vals = pseudo_i8(BATCH_FRAMES * cols * patch, 22);
        let mut lowered = vec![(in_zp + 128) as u8; BATCH_FRAMES * flen];
        for f in 0..BATCH_FRAMES {
            for col in 0..cols {
                for r in 0..patch {
                    lowered[f * flen
                        + (col / NR_I8) * NR_I8 * ps
                        + (r / 2) * 2 * NR_I8
                        + 2 * (col % NR_I8)
                        + (r & 1)] = (vals[(f * cols + col) * patch + r] as u8) ^ 0x80;
                }
            }
        }
        let frame_macs = (oc * patch * cols) as u64;
        let total_macs = BATCH_FRAMES as u64 * frame_macs;
        let mut out = vec![0i8; BATCH_FRAMES * oc * cols];
        let mut rows = String::new();
        let mut b1_ns = 0.0;
        for &b in BATCH_SWEEP.iter() {
            let groups = BATCH_FRAMES / b;
            let ns = time_ns(|| {
                for g in 0..groups {
                    let low = &lowered[g * b * flen..(g + 1) * b * flen];
                    let o = &mut out[g * b * oc * cols..(g + 1) * b * oc * cols];
                    if b == 1 {
                        qconv_panels_i8_into(
                            Pool::serial(),
                            &packed,
                            patch,
                            black_box(low),
                            &fb,
                            &mults,
                            5,
                            true,
                            o,
                        );
                    } else {
                        qconv_panels_i8_batch_into(
                            Pool::serial(),
                            &packed,
                            patch,
                            black_box(low),
                            &fb,
                            &mults,
                            5,
                            true,
                            b,
                            o,
                        );
                    }
                }
                black_box(&out);
            });
            if b == 1 {
                b1_ns = ns;
            }
            let speedup = b1_ns / ns;
            if b == 8 {
                batch8_speedups.push((label, speedup));
            }
            eprintln!(
                "[bench_kernels] batch {label} B={b}: {ns:.0} ns / {BATCH_FRAMES} frames \
                 ({speedup:.2}x vs B=1, {:.1} MMAC/s)",
                mac_per_s(total_macs, ns) / 1e6
            );
            let _ = writeln!(
                rows,
                "      {{\"batch\": {b}, \"ns\": {ns:.0}, \"mac_per_s\": {:.0}, \
                 \"aggregate_speedup_vs_b1\": {speedup:.3}}}{}",
                mac_per_s(total_macs, ns),
                if b != *BATCH_SWEEP.last().expect("non-empty sweep") {
                    ","
                } else {
                    ""
                },
            );
        }
        let _ = writeln!(
            json,
            "    {{\"shape\": \"{label}\", \"out_channels\": {oc}, \"patch\": {patch}, \
             \"cols_per_frame\": {cols}, \"frames\": {BATCH_FRAMES}, \
             \"frame_macs\": {frame_macs}, \"by_batch\": [\n{rows}    ]}}{}",
            if i + 1 < BATCH_SHAPES.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("{json}");
    assert!(
        all_lowered_win,
        "im2col-lowered qconv2d lost to the direct loop on at least one shape"
    );
    for (label, speedup) in &batch8_speedups {
        assert!(
            *speedup > 0.95,
            "batched panel kernel lost throughput at B=8 on {label}: {speedup:.3}x"
        );
    }
    // The raw-i8 kernel must beat the i16 kernel clearly where the AVX2
    // body runs (the gate is skipped when NP_ISA or the host forces a
    // scalar body — there the i8 rows measure the portable fallback).
    if kernel_isa() == KernelIsa::Avx2I8 {
        for (label, speedup) in &i8_speedups {
            if *label == "M1.0_pointwise" {
                assert!(
                    *speedup >= 1.5,
                    "raw-i8 kernel under 1.5x vs i16 on {label}: {speedup:.3}x"
                );
            }
        }
    }
    eprintln!("[bench_kernels] wrote {out_path}");
}
