//! Reproduces **Fig. 4**: Aux-SM vs Aux-HLC comparison across grid sizes
//! (2×2, 3×3, 8×6) for both ensembles on the Known dataset — total MAE vs
//! average cycles per inference.
//!
//! Each line of output is one operating point (threshold setting).

use np_adaptive::sweep::{sweep_aux_hlc, sweep_aux_sm};
use np_adaptive::EnsembleId;
use np_bench::{Experiment, Scale, GRIDS};
use np_dataset::Environment;

fn main() {
    let scale = Scale::from_env();
    let mut exp = Experiment::prepare(Environment::Known, scale);
    let n_thresholds = 13;

    println!("# Fig. 4 — auxiliary policies on the Known dataset");
    println!();
    println!("ensemble,policy,grid,threshold,mae_sum,mean_cycles,frac_big");

    for ens in [EnsembleId::D1, EnsembleId::D2] {
        for grid in GRIDS {
            let table = exp.eval_table(ens, grid);
            let costs = exp.cost_model(ens, grid);

            for p in sweep_aux_sm(&table, &costs, n_thresholds) {
                println!(
                    "{ens},Aux-SM,{grid},{:.4},{:.4},{:.0},{:.3}",
                    p.threshold, p.result.mae_sum, p.result.mean_cycles, p.result.frac_big
                );
            }
            let map = exp.error_map(ens, grid);
            for p in sweep_aux_hlc(&table, &costs, &map, n_thresholds) {
                println!(
                    "{ens},Aux-HLC,{grid},{:.4},{:.4},{:.0},{:.3}",
                    p.threshold, p.result.mae_sum, p.result.mean_cycles, p.result.frac_big
                );
            }
        }
    }

    // Headline check from the paper's Fig. 4 text: with Aux-HLC (8x6) on
    // D2 a point exists with MAE close to the big model at a sizable cycle
    // reduction.
    let grid = np_dataset::GridSpec::GRID_8X6;
    let table = exp.eval_table(EnsembleId::D2, grid);
    let costs = exp.cost_model(EnsembleId::D2, grid);
    let map = exp.error_map(EnsembleId::D2, grid);
    let points = sweep_aux_hlc(&table, &costs, &map, n_thresholds);
    let big_cycles = exp.plan_m10.total_cycles() as f64;
    let big_mae = exp.static_mae()[2].sum();
    if let Some(p) = np_adaptive::sweep::cheapest_at_mae(&points, big_mae * 1.01) {
        eprintln!(
            "[fig4] D2 Aux-HLC 8x6 at MAE<=1.01x big ({:.3}): {:.1}% cycle reduction (paper: 26.07% at +0.57% MAE)",
            p.result.mae_sum,
            100.0 * (1.0 - p.result.mean_cycles / big_cycles)
        );
    } else {
        eprintln!("[fig4] D2 Aux-HLC 8x6 never reaches within 1% of big-model MAE");
    }
}
