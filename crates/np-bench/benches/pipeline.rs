//! End-to-end pipeline throughput on the host: frame rendering, proxy
//! model inference, and evaluation-table replay.

use criterion::{criterion_group, criterion_main, Criterion};
use np_dataset::render::{render_frame, Camera, EnvInstance};
use np_dataset::Pose;
use np_nn::init::SmallRng;
use np_quant::{QScratch, QuantizedNetwork};
use np_tensor::parallel::Pool;
use np_tensor::Tensor;
use np_zoo::channels::PROXY_INPUT;
use np_zoo::ModelId;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    // Renderer throughput.
    let cam = Camera::for_resolution(80, 48);
    let mut rng = SmallRng::seed(1);
    let env = EnvInstance::known(&mut rng);
    let pose = Pose::new(1.5, 0.2, 0.0, 0.5);
    c.bench_function("render_frame_80x48", |b| {
        b.iter(|| black_box(render_frame(black_box(&pose), 0.3, &env, &cam, &mut rng)))
    });

    // Proxy model inference (single frame).
    let x = Tensor::zeros(&[1, 1, 48, 80]);
    for id in [ModelId::F1, ModelId::F2, ModelId::M10] {
        let mut net = id.build_proxy(&mut SmallRng::seed(2));
        let label = format!("forward_{}", id.name().replace('.', ""));
        c.bench_function(&label, |b| b.iter(|| black_box(net.forward(black_box(&x)))));
    }

    // Batch-16 inference (amortized im2col).
    let batch = Tensor::zeros(&[16, 1, 48, 80]);
    let mut f1 = ModelId::F1.build_proxy(&mut SmallRng::seed(3));
    c.bench_function("forward_F1_batch16", |b| {
        b.iter(|| black_box(f1.forward(black_box(&batch))))
    });

    // Cross-frame batched int8 path: the same 8 frames per iteration,
    // grouped at B ∈ {1, 8} through the compiled M1.0 proxy (B=1 runs the
    // single-frame prepacked path the batched plan delegates to).
    let calib = Tensor::zeros(&[2, 1, 48, 80]);
    let m10 = ModelId::M10.build_proxy(&mut SmallRng::seed(4));
    let qnet = QuantizedNetwork::quantize(&m10, &calib);
    let program = qnet.compile_batched(PROXY_INPUT, 8);
    let mut scratch = QScratch::for_program(&program);
    let (ch, h, w) = PROXY_INPUT;
    let frame_len = ch * h * w;
    let frames = Tensor::zeros(&[8, ch, h, w]);
    let qs = qnet.input_params().quantize_slice(frames.as_slice());
    for group in [1usize, 8] {
        let label = format!("run_int_batched_M10_b{group}");
        c.bench_function(&label, |b| {
            b.iter(|| {
                for g in 0..8 / group {
                    let qb = &qs[g * group * frame_len..(g + 1) * group * frame_len];
                    black_box(program.run_int_batched(
                        Pool::serial(),
                        &mut scratch,
                        black_box(qb),
                        group,
                    ));
                }
            })
        });
    }
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
