//! Policy decision overhead — supporting the paper's requirement that the
//! policy itself must have negligible cost compared to model execution.

use criterion::{criterion_group, criterion_main, Criterion};
use np_adaptive::policy::AdaptivePolicy;
use np_adaptive::{AuxHlcPolicy, AuxSmPolicy, ErrorMap, FrameFeatures, OpPolicy, RandomPolicy};
use np_dataset::{GridSpec, Pose};
use std::hint::black_box;

fn frame(i: usize) -> FrameFeatures {
    let v = (i as f32 * 0.137).sin() * 0.5 + 0.5;
    FrameFeatures {
        frame: i,
        small_scaled: [v, 1.0 - v, v * 0.5, 0.5],
        big_scaled: [0.5; 4],
        small_pose: Pose::new(1.0 + v, 0.0, 0.0, 0.0),
        big_pose: Pose::new(1.0, 0.0, 0.0, 0.0),
        avg_pose: Pose::new(1.0 + v / 2.0, 0.0, 0.0, 0.0),
        truth: Pose::new(1.0, 0.0, 0.0, 0.0),
        aux_cell: i % 48,
        aux_margin: v,
    }
}

fn bench_policies(c: &mut Criterion) {
    let frames: Vec<FrameFeatures> = (0..256).map(frame).collect();
    let grid = GridSpec::GRID_8X6;
    let map = ErrorMap::build(grid, &[], &[]);

    c.bench_function("op_decide_256_frames", |b| {
        b.iter(|| {
            let mut p = OpPolicy::new(0.1);
            for f in &frames {
                black_box(p.decide(black_box(f)));
            }
        })
    });

    c.bench_function("aux_sm_decide_256_frames", |b| {
        b.iter(|| {
            let mut p = AuxSmPolicy::new(0.3, "8x6");
            for f in &frames {
                black_box(p.decide(black_box(f)));
            }
        })
    });

    c.bench_function("aux_hlc_decide_256_frames", |b| {
        b.iter(|| {
            let mut p = AuxHlcPolicy::new(0.05, map.clone());
            for f in &frames {
                black_box(p.decide(black_box(f)));
            }
        })
    });

    c.bench_function("random_decide_256_frames", |b| {
        b.iter(|| {
            let mut p = RandomPolicy::new(0.5, 3);
            for f in &frames {
                black_box(p.decide(black_box(f)));
            }
        })
    });
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
