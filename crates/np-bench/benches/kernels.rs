//! Kernel throughput: the float training kernels vs the integer-only
//! deployment kernels, at Frontnet-layer shapes.

use criterion::{criterion_group, criterion_main, Criterion};
use np_quant::kernels::{qconv2d, qconv2d_reference, qconv2d_with, QConvGeometry};
use np_quant::requant::FixedMultiplier;
use np_tensor::conv::{conv2d, depthwise_conv2d, Conv2dSpec};
use np_tensor::im2col::{im2col, Im2colSpec};
use np_tensor::matmul::{matmul, matmul_acc_with};
use np_tensor::parallel::Pool;
use np_tensor::Tensor;
use std::hint::black_box;

/// Dominant conv layer of each paper network at the 96×160 deployment
/// resolution: (label, geometry, input height, input width).
///
/// F1/F2 are dominated by their 5×5 stems; M1.0 by its widest pointwise.
const PAPER_SHAPES: [(&str, QConvGeometry, usize, usize); 3] = [
    (
        "F1_stem_5x5",
        QConvGeometry {
            in_channels: 1,
            out_channels: 32,
            kernel: 5,
            stride: 2,
            padding: 2,
        },
        96,
        160,
    ),
    (
        "F2_block_3x3",
        QConvGeometry {
            in_channels: 40,
            out_channels: 16,
            kernel: 3,
            stride: 2,
            padding: 1,
        },
        24,
        40,
    ),
    (
        "M1.0_pointwise",
        QConvGeometry {
            in_channels: 60,
            out_channels: 60,
            kernel: 1,
            stride: 1,
            padding: 0,
        },
        12,
        20,
    ),
];

fn pseudo_i8(n: usize, seed: u64) -> Vec<i8> {
    let mut s = seed + 1;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (s >> 40) as u8 as i8
        })
        .collect()
}

fn pseudo(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed + 1;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 40) as i32 % 200) as f32 / 100.0 - 1.0
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    // Frontnet stem at proxy resolution: 1->32, 5x5 s2 on 48x80.
    let input = Tensor::from_vec(&[1, 1, 48, 80], pseudo(48 * 80, 1));
    let weight = Tensor::from_vec(&[32, 1, 5, 5], pseudo(32 * 25, 2));
    c.bench_function("conv2d_f32_stem_5x5", |b| {
        b.iter(|| {
            black_box(conv2d(
                black_box(&input),
                &weight,
                None,
                Conv2dSpec {
                    stride: 2,
                    padding: 2,
                },
            ))
        })
    });

    // Mid-network 3x3: 32->32 on 12x20.
    let mid_in = Tensor::from_vec(&[1, 32, 12, 20], pseudo(32 * 240, 3));
    let mid_w = Tensor::from_vec(&[32, 32, 3, 3], pseudo(32 * 32 * 9, 4));
    c.bench_function("conv2d_f32_mid_3x3", |b| {
        b.iter(|| {
            black_box(conv2d(
                black_box(&mid_in),
                &mid_w,
                None,
                Conv2dSpec {
                    stride: 1,
                    padding: 1,
                },
            ))
        })
    });

    // Depthwise 3x3 at MobileNet shapes.
    let dw_w = Tensor::from_vec(&[32, 1, 3, 3], pseudo(32 * 9, 5));
    c.bench_function("depthwise_f32_3x3", |b| {
        b.iter(|| {
            black_box(depthwise_conv2d(
                black_box(&mid_in),
                &dw_w,
                None,
                Conv2dSpec {
                    stride: 1,
                    padding: 1,
                },
            ))
        })
    });

    // Integer conv at the same mid shape.
    let geo = QConvGeometry {
        in_channels: 32,
        out_channels: 32,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let qx: Vec<i8> = (0..32 * 240).map(|i| (i % 255) as i8).collect();
    let qw: Vec<i8> = (0..32 * 32 * 9).map(|i| ((i * 7) % 255) as i8).collect();
    let bias = vec![100i32; 32];
    let mults = vec![FixedMultiplier::from_real(0.003); 32];
    c.bench_function("qconv2d_i8_mid_3x3", |b| {
        b.iter(|| {
            black_box(qconv2d(
                black_box(&qx),
                12,
                20,
                -3,
                geo,
                &qw,
                &bias,
                &mults,
                5,
                true,
            ))
        })
    });

    // Lowering + GEMM building blocks.
    let spec = Im2colSpec {
        channels: 32,
        height: 12,
        width: 20,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let flat = pseudo(32 * 240, 6);
    c.bench_function("im2col_32ch", |b| {
        b.iter(|| black_box(im2col(black_box(&flat), spec)))
    });

    let a = pseudo(32 * 288, 7);
    let bm = pseudo(288 * 240, 8);
    c.bench_function("matmul_32x288x240", |b| {
        b.iter(|| black_box(matmul(black_box(&a), &bm, 32, 288, 240)))
    });

    // Direct (reference loop nest) vs im2col-lowered integer conv at each
    // paper network's dominant layer shape.
    for (label, geo, h, w) in PAPER_SHAPES {
        let qx = pseudo_i8(geo.in_channels * h * w, 11);
        let qw = pseudo_i8(
            geo.out_channels * geo.in_channels * geo.kernel * geo.kernel,
            12,
        );
        let qb = vec![100i32; geo.out_channels];
        let qm = vec![FixedMultiplier::from_real(0.003); geo.out_channels];
        c.bench_function(&format!("qconv2d_direct_{label}"), |b| {
            b.iter(|| {
                black_box(qconv2d_reference(
                    black_box(&qx),
                    h,
                    w,
                    -3,
                    geo,
                    &qw,
                    &qb,
                    &qm,
                    5,
                    true,
                ))
            })
        });
        c.bench_function(&format!("qconv2d_lowered_{label}"), |b| {
            b.iter(|| {
                black_box(qconv2d_with(
                    Pool::serial(),
                    black_box(&qx),
                    h,
                    w,
                    -3,
                    geo,
                    &qw,
                    &qb,
                    &qm,
                    5,
                    true,
                ))
            })
        });
    }

    // The float GEMM each shape lowers to, across pool widths. On a
    // single-core container these report the scheduling overhead floor
    // rather than a speedup; see DESIGN.md.
    for (label, geo, h, w) in PAPER_SHAPES {
        let (oh, ow) = geo.out_hw(h, w);
        let (m, k, n) = (
            geo.out_channels,
            geo.in_channels * geo.kernel * geo.kernel,
            oh * ow,
        );
        let ga = pseudo(m * k, 13);
        let gb = pseudo(k * n, 14);
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            c.bench_function(&format!("gemm_{label}_t{threads}"), |b| {
                b.iter(|| {
                    let mut gc = vec![0.0f32; m * n];
                    matmul_acc_with(pool, black_box(&ga), &gb, &mut gc, m, k, n);
                    black_box(gc)
                })
            });
        }
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
