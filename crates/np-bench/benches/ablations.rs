//! Planner-level ablation timings: tiling solver objectives and whole-plan
//! generation cost for every zoo architecture.

use criterion::{criterion_group, criterion_main, Criterion};
use np_dataset::GridSpec;
use np_dory::plan::deploy_with_objective;
use np_dory::tiling::{solve_tiling, TilingObjective};
use np_gap8::Gap8Config;
use np_zoo::ModelId;
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let gap8 = Gap8Config::default();
    let m10 = ModelId::M10.paper_desc();

    for objective in [TilingObjective::MaxTile, TilingObjective::MinDma] {
        let label = format!("deploy_M10_{objective:?}");
        c.bench_function(&label, |b| {
            b.iter(|| {
                black_box(deploy_with_objective(black_box(&m10), &gap8, objective).expect("fits"))
            })
        });
    }

    // Single-layer tiling solve on the hardest layer (the stem, largest
    // spatial extent).
    let stem = m10.layers.first().expect("m10 has layers").clone();
    c.bench_function("solve_tiling_stem", |b| {
        b.iter(|| {
            black_box(solve_tiling(
                black_box(&stem),
                &gap8,
                TilingObjective::MaxTile,
            ))
        })
    });

    // Full planning across the zoo (what the table2 harness does).
    c.bench_function("deploy_full_zoo", |b| {
        b.iter(|| {
            for id in [
                ModelId::F1,
                ModelId::F2,
                ModelId::M10,
                ModelId::Aux(GridSpec::GRID_8X6),
            ] {
                let desc = id.paper_desc();
                black_box(
                    deploy_with_objective(&desc, &gap8, TilingObjective::MaxTile).expect("fits"),
                );
            }
        })
    });
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
