//! Policy extensions beyond the paper — the "more advanced adaptive
//! inference techniques" its conclusion points to as future work.
//!
//! * [`OpEmaPolicy`] — OP with an exponentially-smoothed score, filtering
//!   out single-frame output noise before triggering the big model.
//! * [`Hysteresis`] — a wrapper that requires `k` consecutive triggers
//!   before switching to the big model (and `k` consecutive non-triggers
//!   before switching back), suppressing decision chatter.

use crate::features::FrameFeatures;
use crate::policy::{AdaptivePolicy, Decision};

/// Output-based partitioning with an exponential moving average of the
/// score: `s_t = alpha * |O_sum,t − O_sum,t−1| + (1−alpha) * s_{t−1}`.
///
/// `alpha = 1` recovers the paper's OP exactly.
#[derive(Debug, Clone)]
pub struct OpEmaPolicy {
    th: f32,
    alpha: f32,
    prev_sum: Option<f32>,
    ema: f32,
}

impl OpEmaPolicy {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(th: f32, alpha: f32) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        OpEmaPolicy {
            th,
            alpha,
            prev_sum: None,
            ema: 0.0,
        }
    }
}

impl AdaptivePolicy for OpEmaPolicy {
    fn name(&self) -> String {
        format!("OP-EMA(th={:.3},a={:.2})", self.th, self.alpha)
    }

    fn reset(&mut self) {
        self.prev_sum = None;
        self.ema = 0.0;
    }

    fn decide(&mut self, frame: &FrameFeatures) -> Decision {
        let sum: f32 = frame.small_scaled.iter().sum();
        let decision = match self.prev_sum {
            None => Decision::Ensemble,
            Some(prev) => {
                let score = (sum - prev).abs();
                self.ema = self.alpha * score + (1.0 - self.alpha) * self.ema;
                if self.ema > self.th {
                    Decision::Ensemble
                } else {
                    Decision::Small
                }
            }
        };
        self.prev_sum = Some(sum);
        decision
    }
}

/// Debouncing wrapper: the inner policy's trigger must persist for
/// `window` consecutive frames before the decision actually flips.
#[derive(Debug, Clone)]
pub struct Hysteresis<P> {
    inner: P,
    window: usize,
    streak: usize,
    active: bool,
}

impl<P: AdaptivePolicy> Hysteresis<P> {
    /// Wraps `inner`; `window = 1` is transparent.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(inner: P, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Hysteresis {
            inner,
            window,
            streak: 0,
            active: false,
        }
    }
}

impl<P: AdaptivePolicy> AdaptivePolicy for Hysteresis<P> {
    fn name(&self) -> String {
        format!("Hysteresis({}, w={})", self.inner.name(), self.window)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.streak = 0;
        self.active = false;
    }

    fn decide(&mut self, frame: &FrameFeatures) -> Decision {
        let raw = self.inner.decide(frame);
        let wants_big = raw.runs_big();
        if wants_big != self.active {
            self.streak += 1;
            if self.streak >= self.window {
                self.active = wants_big;
                self.streak = 0;
            }
        } else {
            self.streak = 0;
        }
        if self.active {
            raw // honour the inner policy's Big vs Ensemble choice
        } else {
            Decision::Small
        }
    }

    fn uses_aux(&self) -> bool {
        self.inner.uses_aux()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::OpPolicy;
    use np_dataset::Pose;

    fn frame(sum_each: f32) -> FrameFeatures {
        FrameFeatures {
            frame: 0,
            small_scaled: [sum_each; 4],
            big_scaled: [0.5; 4],
            small_pose: Pose::new(1.0, 0.0, 0.0, 0.0),
            big_pose: Pose::new(1.0, 0.0, 0.0, 0.0),
            avg_pose: Pose::new(1.0, 0.0, 0.0, 0.0),
            truth: Pose::new(1.0, 0.0, 0.0, 0.0),
            aux_cell: 0,
            aux_margin: 0.5,
        }
    }

    #[test]
    fn ema_with_alpha_one_matches_op() {
        let mut op = OpPolicy::new(0.1);
        let mut ema = OpEmaPolicy::new(0.1, 1.0);
        let seq = [0.5f32, 0.5, 0.55, 0.8, 0.8, 0.5];
        for &s in &seq {
            assert_eq!(op.decide(&frame(s)), ema.decide(&frame(s)));
        }
    }

    #[test]
    fn ema_smooths_single_frame_spikes() {
        // One spike in an otherwise flat stream: plain OP triggers on both
        // edges of the spike, a low-alpha EMA at most once.
        let seq = [0.5f32, 0.5, 0.5, 0.56, 0.5, 0.5];
        let mut op = OpPolicy::new(0.1);
        let mut ema = OpEmaPolicy::new(0.1, 0.3);
        let mut op_triggers = 0;
        let mut ema_triggers = 0;
        for (i, &s) in seq.iter().enumerate() {
            if op.decide(&frame(s)).runs_big() && i > 0 {
                op_triggers += 1;
            }
            if ema.decide(&frame(s)).runs_big() && i > 0 {
                ema_triggers += 1;
            }
        }
        assert!(
            op_triggers > ema_triggers,
            "op {op_triggers} vs ema {ema_triggers}"
        );
    }

    #[test]
    fn hysteresis_debounces() {
        // The inner OP alternates trigger / no-trigger on a staircase
        // signal (every other frame moves); a window of 2 means the
        // trigger never persists long enough to switch.
        let mut flappy = Hysteresis::new(OpPolicy::new(0.05), 2);
        let mut bigs = 0;
        // Value pairs: the inner trigger fires on every pair boundary and
        // clears inside each pair, so it never persists two frames.
        let seq = [
            0.5f32, 0.5, 0.52, 0.52, 0.5, 0.5, 0.52, 0.52, 0.5, 0.5, 0.52, 0.52,
        ];
        for &s in &seq {
            if flappy.decide(&frame(s)).runs_big() {
                bigs += 1;
            }
        }
        assert_eq!(bigs, 0, "hysteresis failed to debounce");
    }

    #[test]
    fn hysteresis_eventually_switches() {
        let mut h = Hysteresis::new(OpPolicy::new(0.05), 2);
        // Sustained large movement: must switch to big within the window.
        let mut found_big = false;
        for i in 0..8 {
            let s = 0.5 + i as f32 * 0.1;
            if h.decide(&frame(s)).runs_big() {
                found_big = true;
            }
        }
        assert!(found_big);
    }

    #[test]
    fn hysteresis_window_one_is_transparent() {
        let mut plain = OpPolicy::new(0.05);
        let mut wrapped = Hysteresis::new(OpPolicy::new(0.05), 1);
        for &s in &[0.5f32, 0.8, 0.8, 0.5, 0.51] {
            assert_eq!(plain.decide(&frame(s)), wrapped.decide(&frame(s)));
        }
    }
}
