//! Policy evaluation over the temporally-ordered test sequences.

use crate::cost::CostModel;
use crate::features::EvalTable;
use crate::policy::{AdaptivePolicy, Decision};
use np_gap8::perf::CycleBreakdown;

/// Outcome of evaluating one policy at one threshold setting.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResult {
    /// Policy display name.
    pub policy: String,
    /// Per-variable MAE in physical units (x, y, z m; phi rad).
    pub mae_per_var: [f32; 4],
    /// Sum MAE — the paper's headline metric.
    pub mae_sum: f32,
    /// Mean cycles per inference on the GAP8 model.
    pub mean_cycles: f64,
    /// Mean latency per inference in milliseconds.
    pub latency_ms: f64,
    /// Mean energy per inference in millijoules.
    pub energy_mj: f64,
    /// Fraction of frames on which the big model ran.
    pub frac_big: f64,
    /// Frames evaluated.
    pub n_frames: usize,
}

/// Replays `table`'s sequences through `policy`, pricing each decision
/// with `costs`.
///
/// The prediction used for accuracy follows the paper:
/// [`Decision::Small`] → small model output, [`Decision::Big`] → big model
/// output, [`Decision::Ensemble`] → average of the two scaled outputs.
///
/// # Panics
///
/// Panics if the table is empty.
pub fn evaluate_policy(
    policy: &mut dyn AdaptivePolicy,
    table: &EvalTable,
    costs: &CostModel,
) -> EvalResult {
    assert!(table.n_frames() > 0, "empty evaluation table");
    let uses_aux = policy.uses_aux();
    let mut err = [0.0f32; 4];
    let mut cycles_acc = CycleBreakdown::default();
    let mut big_frames = 0usize;
    let mut n = 0usize;

    for seq in &table.sequences {
        policy.reset();
        for frame in seq {
            let decision = policy.decide(frame);
            let pred = match decision {
                Decision::Small => &frame.small_pose,
                Decision::Big => &frame.big_pose,
                Decision::Ensemble => &frame.avg_pose,
            };
            let e = pred.abs_error(&frame.truth);
            for (a, v) in err.iter_mut().zip(e.iter()) {
                *a += v;
            }
            cycles_acc = cycles_acc.add(&costs.frame_cycles(decision, uses_aux));
            if decision.runs_big() {
                big_frames += 1;
            }
            n += 1;
        }
    }

    for a in &mut err {
        *a /= n as f32;
    }
    let mean = CycleBreakdown {
        compute: cycles_acc.compute / n as u64,
        dma_stall: cycles_acc.dma_stall / n as u64,
        setup: cycles_acc.setup / n as u64,
    };
    EvalResult {
        policy: policy.name(),
        mae_per_var: err,
        mae_sum: err.iter().sum(),
        mean_cycles: cycles_acc.total() as f64 / n as f64,
        latency_ms: costs.to_ms(&mean),
        energy_mj: costs.to_mj(&mean),
        frac_big: big_frames as f64 / n as f64,
        n_frames: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FrameFeatures;
    use crate::policy::{OraclePolicy, RandomPolicy};
    use np_dataset::{GridSpec, Pose};
    use np_gap8::perf::CycleBreakdown;
    use np_gap8::power::PowerModel;
    use np_gap8::Gap8Config;

    fn table() -> EvalTable {
        let truth = Pose::new(1.0, 0.0, 0.0, 0.0);
        let mk = |s_err: f32, b_err: f32| FrameFeatures {
            frame: 0,
            small_scaled: [0.5; 4],
            big_scaled: [0.5; 4],
            small_pose: Pose::new(1.0 + s_err, 0.0, 0.0, 0.0),
            big_pose: Pose::new(1.0 + b_err, 0.0, 0.0, 0.0),
            avg_pose: Pose::new(1.0 + (s_err + b_err) / 2.0, 0.0, 0.0, 0.0),
            truth,
            aux_cell: 0,
            aux_margin: 0.5,
        };
        EvalTable {
            sequences: vec![
                vec![mk(0.4, 0.1), mk(0.3, 0.2)],
                vec![mk(0.2, 0.25), mk(0.5, 0.05)],
            ],
            grid: GridSpec::GRID_2X2,
        }
    }

    fn costs() -> CostModel {
        CostModel {
            small: CycleBreakdown {
                compute: 1000,
                dma_stall: 0,
                setup: 0,
            },
            big: CycleBreakdown {
                compute: 4000,
                dma_stall: 0,
                setup: 0,
            },
            aux: CycleBreakdown {
                compute: 100,
                dma_stall: 0,
                setup: 0,
            },
            decision_overhead: CycleBreakdown::default(),
            config: Gap8Config::default(),
            power: PowerModel::default(),
            calibrated: false,
        }
    }

    #[test]
    fn all_small_vs_all_big_extremes() {
        let t = table();
        let c = costs();
        let mut always_small = RandomPolicy::new(0.0, 1);
        let mut always_big = RandomPolicy::new(1.0, 1);
        let rs = evaluate_policy(&mut always_small, &t, &c);
        let rb = evaluate_policy(&mut always_big, &t, &c);
        assert_eq!(rs.frac_big, 0.0);
        assert_eq!(rb.frac_big, 1.0);
        assert_eq!(rs.mean_cycles, 1000.0);
        assert_eq!(rb.mean_cycles, 4000.0);
        // Small has MAE mean(0.4,0.3,0.2,0.5)=0.35; big 0.15.
        assert!((rs.mae_sum - 0.35).abs() < 1e-5);
        assert!((rb.mae_sum - 0.15).abs() < 1e-5);
    }

    #[test]
    fn oracle_dominates_random() {
        let t = table();
        let c = costs();
        let mut oracle = OraclePolicy::new();
        let ro = evaluate_policy(&mut oracle, &t, &c);
        // Oracle picks big everywhere except frame 3 (small 0.2 < big 0.25).
        assert!((ro.frac_big - 0.75).abs() < 1e-9);
        assert!((ro.mae_sum - (0.1 + 0.2 + 0.2 + 0.05) / 4.0).abs() < 1e-5);
        // Oracle's MAE is the pointwise minimum — better than both
        // static extremes.
        let mut big = RandomPolicy::new(1.0, 1);
        let rb = evaluate_policy(&mut big, &t, &c);
        assert!(ro.mae_sum < rb.mae_sum + 1e-6);
    }

    #[test]
    fn latency_and_energy_track_cycles() {
        let t = table();
        let c = costs();
        let mut p = RandomPolicy::new(1.0, 1);
        let r = evaluate_policy(&mut p, &t, &c);
        // 4000 cycles @ 170 MHz ≈ 0.0235 ms.
        assert!((r.latency_ms - 4000.0 / 170.0e6 * 1e3).abs() < 1e-6);
        assert!(r.energy_mj > 0.0);
    }
}
