//! Precomputed per-frame model outputs.
//!
//! Threshold sweeps evaluate hundreds of operating points over the same
//! test frames; running the CNNs once and replaying their outputs makes a
//! sweep O(frames) instead of O(frames × thresholds × MACs).

use np_dataset::{GridSpec, Pose, PoseDataset};
use np_nn::Sequential;
use np_quant::QuantizedNetwork;
use np_tensor::ops::{softmax, top2};
use np_tensor::parallel::Pool;

/// Everything a policy may consult about one frame, plus both models'
/// predictions for outcome accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameFeatures {
    /// Dataset frame index.
    pub frame: usize,
    /// Small model's min-max-scaled outputs.
    pub small_scaled: [f32; 4],
    /// Big model's min-max-scaled outputs.
    pub big_scaled: [f32; 4],
    /// Small model's physical pose prediction.
    pub small_pose: Pose,
    /// Big model's physical pose prediction.
    pub big_pose: Pose,
    /// Average-of-scaled-outputs pose (OP's ensembled prediction).
    pub avg_pose: Pose,
    /// Ground truth.
    pub truth: Pose,
    /// Auxiliary classifier's predicted grid cell.
    pub aux_cell: usize,
    /// Auxiliary classifier's score margin (max − second max of softmax).
    pub aux_margin: f32,
}

/// Precomputed outputs for every test frame, grouped in temporally-ordered
/// sequences.
#[derive(Debug, Clone)]
pub struct EvalTable {
    /// Per-sequence frame features, each sequence in temporal order.
    pub sequences: Vec<Vec<FrameFeatures>>,
    /// The grid the auxiliary features were computed for.
    pub grid: GridSpec,
}

/// Inference backend for building tables: float proxies or the int8
/// deployment-equivalent networks.
pub enum Backend<'a> {
    /// Float (f32) proxy model.
    Float(&'a mut Sequential),
    /// Integer-only quantized model (deployment arithmetic).
    Quantized(&'a QuantizedNetwork),
}

impl Backend<'_> {
    /// Raw outputs for the given frames, one row per frame. Runs on the
    /// global pool.
    pub fn outputs(&mut self, data: &PoseDataset, indices: &[usize]) -> Vec<Vec<f32>> {
        self.outputs_with(Pool::global(), data, indices)
    }

    /// [`Self::outputs`] on an explicit execution context: the model's
    /// batch-parallel kernels run on `pool`.
    pub fn outputs_with(
        &mut self,
        pool: Pool,
        data: &PoseDataset,
        indices: &[usize],
    ) -> Vec<Vec<f32>> {
        let mut rows = Vec::with_capacity(indices.len());
        for chunk in indices.chunks(64) {
            let x = data.images_tensor(chunk);
            let y = match self {
                Backend::Float(m) => m.forward_with(pool, &x),
                Backend::Quantized(q) => q.forward_with(pool, &x),
            };
            let d = y.shape()[1];
            for bi in 0..chunk.len() {
                rows.push(y.as_slice()[bi * d..(bi + 1) * d].to_vec());
            }
        }
        rows
    }
}

impl EvalTable {
    /// Builds the table for the dataset's test sequences. Runs on the
    /// global pool.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has no test sequences.
    pub fn build(
        data: &PoseDataset,
        small: &mut Backend<'_>,
        big: &mut Backend<'_>,
        aux: &mut Backend<'_>,
        grid: GridSpec,
    ) -> EvalTable {
        Self::build_with(Pool::global(), data, small, big, aux, grid)
    }

    /// [`Self::build`] on an explicit execution context.
    pub fn build_with(
        pool: Pool,
        data: &PoseDataset,
        small: &mut Backend<'_>,
        big: &mut Backend<'_>,
        aux: &mut Backend<'_>,
        grid: GridSpec,
    ) -> EvalTable {
        let sequences = data.test_sequences();
        assert!(!sequences.is_empty(), "dataset has no test sequences");
        let flat: Vec<usize> = sequences.iter().flatten().copied().collect();
        let table = Self::build_for_indices_with(pool, data, small, big, aux, grid, &flat);

        // Regroup flat rows into the sequence structure.
        let mut iter = table.into_iter();
        let grouped = sequences
            .iter()
            .map(|seq| {
                (0..seq.len())
                    .map(|_| iter.next().expect("length match"))
                    .collect()
            })
            .collect();
        EvalTable {
            sequences: grouped,
            grid,
        }
    }

    /// Builds flat (un-sequenced) features for arbitrary frames — used for
    /// validation-set error maps. Runs on the global pool.
    pub fn build_for_indices(
        data: &PoseDataset,
        small: &mut Backend<'_>,
        big: &mut Backend<'_>,
        aux: &mut Backend<'_>,
        grid: GridSpec,
        indices: &[usize],
    ) -> Vec<FrameFeatures> {
        Self::build_for_indices_with(Pool::global(), data, small, big, aux, grid, indices)
    }

    /// [`Self::build_for_indices`] on an explicit execution context.
    ///
    /// The three backends run one after another; each backend's inference
    /// is batch-parallel on `pool`. Parallelizing *within* a backend beats
    /// racing the three backends against each other: batch chunks are 64
    /// frames wide, so per-frame work saturates the pool, while the big
    /// model dominates the three-way split and would leave workers idle.
    pub fn build_for_indices_with(
        pool: Pool,
        data: &PoseDataset,
        small: &mut Backend<'_>,
        big: &mut Backend<'_>,
        aux: &mut Backend<'_>,
        _grid: GridSpec,
        indices: &[usize],
    ) -> Vec<FrameFeatures> {
        let scaler = *data.scaler();
        let small_out = small.outputs_with(pool, data, indices);
        let big_out = big.outputs_with(pool, data, indices);
        let aux_out = aux.outputs_with(pool, data, indices);

        indices
            .iter()
            .enumerate()
            .map(|(row, &i)| {
                let s: [f32; 4] = small_out[row][..4].try_into().expect("4 outputs");
                let b: [f32; 4] = big_out[row][..4].try_into().expect("4 outputs");
                let avg = [
                    (s[0] + b[0]) / 2.0,
                    (s[1] + b[1]) / 2.0,
                    (s[2] + b[2]) / 2.0,
                    (s[3] + b[3]) / 2.0,
                ];
                let probs = softmax(&aux_out[row]);
                let (hi, second) = top2(&probs);
                let cell = probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("non-empty probs");
                FrameFeatures {
                    frame: i,
                    small_scaled: s,
                    big_scaled: b,
                    small_pose: scaler.unscale(s),
                    big_pose: scaler.unscale(b),
                    avg_pose: scaler.unscale(avg),
                    truth: data.frame(i).pose,
                    aux_cell: cell,
                    aux_margin: hi - second,
                }
            })
            .collect()
    }

    /// Total number of frames across all sequences.
    pub fn n_frames(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    /// Iterates over all frames, ignoring sequence boundaries.
    pub fn iter_frames(&self) -> impl Iterator<Item = &FrameFeatures> {
        self.sequences.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_dataset::DatasetConfig;
    use np_nn::init::SmallRng;
    use np_zoo::ModelId;

    fn tiny_setup() -> (PoseDataset, Sequential, Sequential, Sequential) {
        let data = PoseDataset::generate(&DatasetConfig::tiny());
        let mut rng = SmallRng::seed(3);
        let small = ModelId::F1.build_proxy(&mut rng);
        let big = ModelId::M10.build_proxy(&mut rng);
        let aux = ModelId::Aux(GridSpec::GRID_2X2).build_proxy(&mut rng);
        (data, small, big, aux)
    }

    #[test]
    fn table_structure_matches_dataset() {
        let (data, mut small, mut big, mut aux) = tiny_setup();
        let table = EvalTable::build(
            &data,
            &mut Backend::Float(&mut small),
            &mut Backend::Float(&mut big),
            &mut Backend::Float(&mut aux),
            GridSpec::GRID_2X2,
        );
        let expect: Vec<usize> = data.test_sequences().iter().map(Vec::len).collect();
        let got: Vec<usize> = table.sequences.iter().map(Vec::len).collect();
        assert_eq!(expect, got);
        assert!(table.n_frames() > 0);
    }

    #[test]
    fn features_are_consistent() {
        let (data, mut small, mut big, mut aux) = tiny_setup();
        let table = EvalTable::build(
            &data,
            &mut Backend::Float(&mut small),
            &mut Backend::Float(&mut big),
            &mut Backend::Float(&mut aux),
            GridSpec::GRID_2X2,
        );
        let scaler = data.scaler();
        for f in table.iter_frames() {
            // Poses match their scaled representations.
            let p = scaler.unscale(f.small_scaled);
            assert!((p.x - f.small_pose.x).abs() < 1e-5);
            // Margin is a valid probability difference.
            assert!((0.0..=1.0).contains(&f.aux_margin));
            assert!(f.aux_cell < 4);
            // Truth comes from the dataset.
            assert_eq!(f.truth, data.frame(f.frame).pose);
        }
    }

    #[test]
    fn avg_pose_is_scaled_midpoint() {
        let (data, mut small, mut big, mut aux) = tiny_setup();
        let table = EvalTable::build(
            &data,
            &mut Backend::Float(&mut small),
            &mut Backend::Float(&mut big),
            &mut Backend::Float(&mut aux),
            GridSpec::GRID_2X2,
        );
        let scaler = data.scaler();
        let f = table.iter_frames().next().expect("frames");
        let mid = scaler.unscale([
            (f.small_scaled[0] + f.big_scaled[0]) / 2.0,
            (f.small_scaled[1] + f.big_scaled[1]) / 2.0,
            (f.small_scaled[2] + f.big_scaled[2]) / 2.0,
            (f.small_scaled[3] + f.big_scaled[3]) / 2.0,
        ]);
        assert!((mid.x - f.avg_pose.x).abs() < 1e-5);
    }
}
