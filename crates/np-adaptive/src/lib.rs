//! # np-adaptive
//!
//! The paper's contribution: **adaptive big/little inference for visual
//! pose estimation aboard nano-drones**.
//!
//! An adaptive system pairs a *small* pose regressor (F1 or F2) with a
//! *big* one (M1.0) and decides per camera frame which to run, using one
//! of three policies:
//!
//! * [`policy::OpPolicy`] — **Output-based Partitioning**: always run the
//!   small model; when the sum of its min-max-scaled outputs moved more
//!   than `th_OP` since the previous frame, also run the big model and
//!   average the two predictions (paper Eq. 1–2).
//! * [`policy::AuxSmPolicy`] — **Auxiliary Score-Margin**: a ~650 kMAC
//!   classifier localizes the head in a grid; run the big model iff the
//!   classifier's score margin is below `th_SM` (paper Eq. 3).
//! * [`policy::AuxHlcPolicy`] — **Head-Localization-Class**: run the big
//!   model iff the predicted grid cell's validation-set error-map value
//!   `E(i,j) = MAE_small(i,j) − MAE_big(i,j)` exceeds `th_HLC`.
//! * [`policy::RandomPolicy`] / [`policy::OraclePolicy`] — the zero-cost
//!   random baseline of the paper and the ideal decision upper bound.
//!
//! Ensembles are named as in the paper: **D1** = (F1, M1.0),
//! **D2** = (F2, M1.0).
//!
//! Evaluation ([`eval`]) replays the temporally-ordered test sequences,
//! prices every decision with the GAP8 deployment plans (paper Eq. 2/4),
//! and threshold sweeps ([`sweep`]) produce the MAE-vs-cycles operating
//! curves of the paper's Figs. 4–6 and the deployment rows of Table II.

pub mod collector;
pub mod cost;
pub mod error_map;
pub mod eval;
pub mod extensions;
pub mod features;
pub mod policy;
pub mod runner;
pub mod sweep;

pub use collector::BatchCollector;
pub use cost::{CostModel, EnsembleId};
pub use error_map::ErrorMap;
pub use eval::{evaluate_policy, EvalResult};
pub use extensions::{Hysteresis, OpEmaPolicy};
pub use features::{EvalTable, FrameFeatures};
pub use policy::{
    AdaptivePolicy, AuxHlcPolicy, AuxSmPolicy, Decision, OpPolicy, OraclePolicy, RandomPolicy,
};
pub use runner::{FrameResult, FrameRunner};
pub use sweep::{pareto_front, OperatingPoint};
