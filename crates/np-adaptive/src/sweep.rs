//! Threshold sweeps and Pareto-front extraction.

use crate::cost::CostModel;
use crate::error_map::ErrorMap;
use crate::eval::{evaluate_policy, EvalResult};
use crate::features::EvalTable;
use crate::policy::{AuxHlcPolicy, AuxSmPolicy, OpPolicy, RandomPolicy};
use np_tensor::parallel::Pool;

/// One point on a policy's accuracy-vs-cost curve.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// The tunable threshold (or probability) that produced this point.
    pub threshold: f32,
    /// The evaluation outcome.
    pub result: EvalResult,
}

/// Evenly-spaced quantiles of a sample (used to place sweep thresholds
/// where the score distribution actually has mass).
pub fn quantiles(mut values: Vec<f32>, n: usize) -> Vec<f32> {
    assert!(n >= 2, "need at least two quantiles");
    values.retain(|v| v.is_finite());
    if values.is_empty() {
        return vec![0.0; n];
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (0..n)
        .map(|i| {
            let q = i as f32 / (n - 1) as f32;
            let idx = ((values.len() - 1) as f32 * q).round() as usize;
            values[idx]
        })
        .collect()
}

/// Sweeps the OP policy across `n` thresholds placed at quantiles of the
/// observed OP-score distribution. Runs on the global pool.
pub fn sweep_op(table: &EvalTable, costs: &CostModel, n: usize) -> Vec<OperatingPoint> {
    sweep_op_with(Pool::global(), table, costs, n)
}

/// [`sweep_op`] on an explicit execution context. Operating points are
/// evaluated in parallel (each threshold replays the table independently);
/// the returned order follows the threshold order regardless of pool size.
pub fn sweep_op_with(
    pool: Pool,
    table: &EvalTable,
    costs: &CostModel,
    n: usize,
) -> Vec<OperatingPoint> {
    // Collect the empirical OP scores.
    let mut scores = Vec::new();
    for seq in &table.sequences {
        let mut prev: Option<f32> = None;
        for f in seq {
            let sum: f32 = f.small_scaled.iter().sum();
            if let Some(p) = prev {
                scores.push((sum - p).abs());
            }
            prev = Some(sum);
        }
    }
    let mut ths = quantiles(scores, n);
    ths.push(f32::INFINITY); // never trigger: degenerates to static small
    ths.dedup();
    pool.map(ths.len(), |i| {
        let th = ths[i];
        OperatingPoint {
            threshold: th,
            result: evaluate_policy(&mut OpPolicy::new(th), table, costs),
        }
    })
}

/// Sweeps Aux-SM across `n` margin thresholds. Runs on the global pool.
pub fn sweep_aux_sm(table: &EvalTable, costs: &CostModel, n: usize) -> Vec<OperatingPoint> {
    sweep_aux_sm_with(Pool::global(), table, costs, n)
}

/// [`sweep_aux_sm`] on an explicit execution context.
pub fn sweep_aux_sm_with(
    pool: Pool,
    table: &EvalTable,
    costs: &CostModel,
    n: usize,
) -> Vec<OperatingPoint> {
    let margins: Vec<f32> = table.iter_frames().map(|f| f.aux_margin).collect();
    let mut ths = quantiles(margins, n);
    ths.insert(0, -1.0); // never big
    ths.push(1.1); // always big
    ths.dedup();
    let grid = table.grid.to_string();
    pool.map(ths.len(), |i| {
        let th = ths[i];
        OperatingPoint {
            threshold: th,
            result: evaluate_policy(&mut AuxSmPolicy::new(th, grid.clone()), table, costs),
        }
    })
}

/// Sweeps Aux-HLC across the distinct values of the error map. Runs on the
/// global pool.
pub fn sweep_aux_hlc(
    table: &EvalTable,
    costs: &CostModel,
    map: &ErrorMap,
    n: usize,
) -> Vec<OperatingPoint> {
    sweep_aux_hlc_with(Pool::global(), table, costs, map, n)
}

/// [`sweep_aux_hlc`] on an explicit execution context.
pub fn sweep_aux_hlc_with(
    pool: Pool,
    table: &EvalTable,
    costs: &CostModel,
    map: &ErrorMap,
    n: usize,
) -> Vec<OperatingPoint> {
    let mut ths = quantiles(map.values().to_vec(), n);
    ths.insert(0, f32::NEG_INFINITY); // always big
    ths.push(f32::INFINITY); // never big
    ths.dedup();
    pool.map(ths.len(), |i| {
        let th = ths[i];
        OperatingPoint {
            threshold: th,
            result: evaluate_policy(&mut AuxHlcPolicy::new(th, map.clone()), table, costs),
        }
    })
}

/// Sweeps the Random baseline across big-model probabilities. Runs on the
/// global pool.
pub fn sweep_random(table: &EvalTable, costs: &CostModel, n: usize) -> Vec<OperatingPoint> {
    sweep_random_with(Pool::global(), table, costs, n)
}

/// [`sweep_random`] on an explicit execution context. Each probability
/// seeds its own [`RandomPolicy`] RNG, so results do not depend on the
/// evaluation order.
pub fn sweep_random_with(
    pool: Pool,
    table: &EvalTable,
    costs: &CostModel,
    n: usize,
) -> Vec<OperatingPoint> {
    pool.map(n, |i| {
        let p = i as f64 / (n - 1) as f64;
        OperatingPoint {
            threshold: p as f32,
            result: evaluate_policy(&mut RandomPolicy::new(p, 99), table, costs),
        }
    })
}

/// Non-dominated subset of operating points (minimize MAE and cycles),
/// sorted by increasing cycles.
pub fn pareto_front(points: &[OperatingPoint]) -> Vec<OperatingPoint> {
    let mut sorted: Vec<&OperatingPoint> = points.iter().collect();
    sorted.sort_by(|a, b| {
        a.result
            .mean_cycles
            .partial_cmp(&b.result.mean_cycles)
            .expect("finite")
    });
    let mut front: Vec<OperatingPoint> = Vec::new();
    let mut best_mae = f32::INFINITY;
    for p in sorted {
        if p.result.mae_sum < best_mae - 1e-6 {
            best_mae = p.result.mae_sum;
            front.push(p.clone());
        }
    }
    front
}

/// Finds the cheapest operating point whose MAE does not exceed
/// `mae_budget` (the paper's "iso-MAE" comparison); `None` if the policy
/// never reaches that accuracy.
pub fn cheapest_at_mae(points: &[OperatingPoint], mae_budget: f32) -> Option<&OperatingPoint> {
    points
        .iter()
        .filter(|p| p.result.mae_sum <= mae_budget)
        .min_by(|a, b| {
            a.result
                .mean_cycles
                .partial_cmp(&b.result.mean_cycles)
                .expect("finite")
        })
}

/// Finds the most accurate operating point whose mean cycles do not exceed
/// `cycle_budget` (the paper's "iso-latency" comparison).
pub fn best_at_cycles(points: &[OperatingPoint], cycle_budget: f64) -> Option<&OperatingPoint> {
    points
        .iter()
        .filter(|p| p.result.mean_cycles <= cycle_budget)
        .min_by(|a, b| {
            a.result
                .mae_sum
                .partial_cmp(&b.result.mae_sum)
                .expect("finite")
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalResult;

    fn point(mae: f32, cycles: f64) -> OperatingPoint {
        OperatingPoint {
            threshold: 0.0,
            result: EvalResult {
                policy: "t".into(),
                mae_per_var: [mae / 4.0; 4],
                mae_sum: mae,
                mean_cycles: cycles,
                latency_ms: 0.0,
                energy_mj: 0.0,
                frac_big: 0.0,
                n_frames: 1,
            },
        }
    }

    #[test]
    fn quantiles_cover_range() {
        let q = quantiles(vec![5.0, 1.0, 3.0, 2.0, 4.0], 3);
        assert_eq!(q, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn pareto_removes_dominated() {
        let pts = vec![
            point(1.0, 100.0),
            point(0.9, 200.0),
            point(1.2, 150.0), // dominated: slower and worse than (1.0, 100)
            point(0.8, 400.0),
        ];
        let front = pareto_front(&pts);
        let maes: Vec<f32> = front.iter().map(|p| p.result.mae_sum).collect();
        assert_eq!(maes, vec![1.0, 0.9, 0.8]);
    }

    #[test]
    fn iso_queries() {
        let pts = vec![point(1.0, 100.0), point(0.9, 200.0), point(0.8, 400.0)];
        let iso_mae = cheapest_at_mae(&pts, 0.9).expect("point exists");
        assert_eq!(iso_mae.result.mean_cycles, 200.0);
        let iso_cycles = best_at_cycles(&pts, 250.0).expect("point exists");
        assert_eq!(iso_cycles.result.mae_sum, 0.9);
        assert!(cheapest_at_mae(&pts, 0.5).is_none());
    }
}
