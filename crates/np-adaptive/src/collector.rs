//! Cross-frame batching for the streaming big/little runtime.
//!
//! [`crate::runner::FrameRunner`] executes every frame the moment it
//! arrives — the right shape for a single closed control loop, but it pays
//! the GEMV tax: each kernel invocation sees one frame's worth of output
//! pixels, so packed weight panels stream from memory once per frame.
//! [`BatchCollector`] is the multi-stream counterpart: it stages up to
//! `max_batch` incoming frames (or as many as arrive within a
//! `flush_after_us` window — whichever limit hits first) and drives the
//! big/little ensemble through the batched program entries
//! ([`QuantizedProgram::run_int_batched`] machinery), amortizing weight
//! traffic across the whole group.
//!
//! The OP policy is inherently sequential — frame `t`'s decision depends
//! on frame `t-1`'s little-model outputs — but it only ever consumes
//! *little* outputs. A flush therefore runs in three phases:
//!
//! 1. the little model over all staged frames in one batched pass;
//! 2. the policy frame-by-frame over those outputs (pure arithmetic);
//! 3. the big model over just the frames the policy escalated, gathered
//!    into a second batched pass.
//!
//! Because the batched passes are bit-exact against per-frame execution
//! and the policy sees the identical little-output sequence, the emitted
//! [`FrameResult`]s are **identical** to what a [`FrameRunner`] with the
//! same threshold would produce frame by frame — pinned by tests.
//! All staging is preallocated at construction; a steady-state
//! push/flush cycle performs zero heap allocations (enforced in
//! `tests/zero_alloc.rs`).
//!
//! [`FrameRunner`]: crate::runner::FrameRunner

use crate::policy::{AdaptivePolicy, Decision, OpPolicy};
use crate::runner::FrameResult;
use np_quant::{QScratch, QuantizedNetwork, QuantizedProgram};
use np_tensor::parallel::Pool;
use std::sync::Arc;

/// Groups incoming frames into batches of up to `max_batch` (or whatever
/// arrived within `flush_after_us` microseconds of the oldest staged
/// frame) and runs the big/little ensemble through the batched program
/// entries. See the module docs for the phase split and the exactness
/// argument.
pub struct BatchCollector {
    little: Arc<QuantizedProgram>,
    big: Arc<QuantizedProgram>,
    policy: OpPolicy,
    scratch: QScratch,
    pool: Pool,
    max_batch: usize,
    flush_after_us: u64,
    frame_len: usize,
    /// Staged input frames, `max_batch * frame_len`, filled front-to-back.
    staged: Vec<f32>,
    /// Gather buffer for the frames the policy escalates to the big model.
    big_staged: Vec<f32>,
    /// Staged frame count; the batch size of the next flush.
    pending: usize,
    /// Arrival time of the oldest staged frame (µs, caller's clock).
    first_us: u64,
    /// Per-frame little outputs of the current flush (copied out of the
    /// scratch before the big pass reuses it).
    little_scaled: Vec<[f32; 4]>,
    /// Batch rows the policy escalated, in arrival order.
    big_rows: Vec<usize>,
    /// Results of the most recent flush.
    results: Vec<FrameResult>,
    little_span: np_trace::SpanId,
    big_span: np_trace::SpanId,
    frames: u64,
    big_frames: u64,
}

impl BatchCollector {
    /// Compiles `little` and `big` for `chw` inputs with batch plans of
    /// `max_batch`, wires an OP policy with threshold `th`, and
    /// preallocates all staging.
    ///
    /// `flush_after_us` is the grouping deadline: a [`Self::push`] (or
    /// [`Self::poll`]) whose timestamp is at least this many microseconds
    /// after the oldest staged frame's flushes whatever has accumulated,
    /// so a quiet stream still bounds its latency. `0` flushes on every
    /// push — [`FrameRunner`](crate::runner::FrameRunner) behavior with
    /// batched plumbing.
    ///
    /// # Panics
    ///
    /// Panics if either network does not produce exactly the 4 pose
    /// outputs the OP policy scores, or `max_batch == 0`.
    pub fn new(
        little: &QuantizedNetwork,
        big: &QuantizedNetwork,
        chw: (usize, usize, usize),
        th: f32,
        pool: Pool,
        max_batch: usize,
        flush_after_us: u64,
    ) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        Self::from_programs(
            little.compile_batched_shared(chw, max_batch),
            big.compile_batched_shared(chw, max_batch),
            th,
            pool,
            max_batch,
            flush_after_us,
        )
    }

    /// Builds a collector over already-compiled, shared batch-planned
    /// programs (see [`FrameRunner::from_programs`] for the sharing
    /// argument; this is how a serving layer coalesces escalations from
    /// *different* sessions through one set of packed weights).
    ///
    /// # Panics
    ///
    /// Panics if either program does not regress exactly 4 outputs, the
    /// input shapes disagree, or either program's batch plan cannot carry
    /// `max_batch` frames.
    ///
    /// [`FrameRunner::from_programs`]: crate::runner::FrameRunner::from_programs
    pub fn from_programs(
        little: Arc<QuantizedProgram>,
        big: Arc<QuantizedProgram>,
        th: f32,
        pool: Pool,
        max_batch: usize,
        flush_after_us: u64,
    ) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        assert!(
            little.max_batch() >= max_batch && big.max_batch() >= max_batch,
            "programs must be batch-compiled for at least max_batch={max_batch} \
             (little {}, big {})",
            little.max_batch(),
            big.max_batch()
        );
        assert_eq!(
            little.output_len(),
            4,
            "little model must regress 4 outputs"
        );
        assert_eq!(big.output_len(), 4, "big model must regress 4 outputs");
        assert_eq!(
            little.input_chw(),
            big.input_chw(),
            "ensemble members must share an input shape"
        );
        let scratch = QScratch::for_programs(&[&little, &big]);
        let (c, h, w) = little.input_chw();
        let frame_len = c * h * w;
        let little_span = np_trace::register_span(&format!("collector/{}@batch", little.name()));
        let big_span = np_trace::register_span(&format!("collector/{}@batch", big.name()));
        BatchCollector {
            little,
            big,
            policy: OpPolicy::new(th),
            scratch,
            pool,
            max_batch,
            flush_after_us,
            frame_len,
            staged: vec![0.0; max_batch * frame_len],
            big_staged: vec![0.0; max_batch * frame_len],
            pending: 0,
            first_us: 0,
            little_scaled: Vec::with_capacity(max_batch),
            big_rows: Vec::with_capacity(max_batch),
            results: Vec::with_capacity(max_batch),
            little_span,
            big_span,
            frames: 0,
            big_frames: 0,
        }
    }

    /// Stages one float CHW frame arriving at `now_us` (any monotonic
    /// microsecond clock; only differences matter). Returns the batch's
    /// [`FrameResult`]s — in arrival order — when this frame filled the
    /// batch or landed on/after the flush deadline; `None` while the
    /// group is still accumulating.
    ///
    /// # Panics
    ///
    /// Panics if `frame` does not match the compiled input shape.
    pub fn push(&mut self, frame: &[f32], now_us: u64) -> Option<&[FrameResult]> {
        assert_eq!(frame.len(), self.frame_len, "frame size mismatch");
        if self.pending == 0 {
            self.first_us = now_us;
        }
        let at = self.pending * self.frame_len;
        self.staged[at..at + self.frame_len].copy_from_slice(frame);
        self.pending += 1;
        if self.pending == self.max_batch
            || now_us.saturating_sub(self.first_us) >= self.flush_after_us
        {
            return Some(self.flush());
        }
        None
    }

    /// Deadline check without a new frame: flushes and returns results if
    /// frames are staged and `now_us` is on/after the flush deadline.
    pub fn poll(&mut self, now_us: u64) -> Option<&[FrameResult]> {
        if self.pending > 0 && now_us.saturating_sub(self.first_us) >= self.flush_after_us {
            return Some(self.flush());
        }
        None
    }

    /// Runs the staged frames now, regardless of batch fill or deadline
    /// (empty slice if nothing is staged) — end-of-stream drain.
    pub fn flush(&mut self) -> &[FrameResult] {
        let n = self.pending;
        self.pending = 0;
        self.results.clear();
        if n == 0 {
            return &self.results;
        }
        let fl = self.frame_len;

        // Phase 1: the little model over the whole group in one batched
        // pass. The outputs are copied out before the scratch is reused.
        let t_little = np_trace::start();
        let lo =
            self.little
                .forward_batched(self.pool, &mut self.scratch, &self.staged[..n * fl], n);
        self.little_scaled.clear();
        for b in 0..n {
            self.little_scaled
                .push([lo[b * 4], lo[b * 4 + 1], lo[b * 4 + 2], lo[b * 4 + 3]]);
        }
        np_trace::finish(self.little_span, t_little, n as u64);

        // Phase 2: the policy, strictly in arrival order — identical
        // state evolution to frame-by-frame streaming.
        self.big_rows.clear();
        for b in 0..n {
            let little_scaled = self.little_scaled[b];
            let op_score = self
                .policy
                .pending_score(&little_scaled)
                .unwrap_or(f32::NAN);
            let decision = self.policy.decide_scaled(&little_scaled);
            if decision.runs_big() {
                let at = self.big_rows.len() * fl;
                let (src, dst) = (&self.staged[b * fl..(b + 1) * fl], at);
                self.big_staged[dst..dst + fl].copy_from_slice(src);
                self.big_rows.push(b);
                self.big_frames += 1;
                np_trace::counter_add(np_trace::Counter::FramesBig, 1);
            }
            np_trace::counter_add(np_trace::Counter::FramesTotal, 1);
            np_trace::record_frame(np_trace::FrameEvent {
                frame: self.frames,
                decision: match decision {
                    Decision::Small => np_trace::FrameDecision::Small,
                    Decision::Big => np_trace::FrameDecision::Big,
                    Decision::Ensemble => np_trace::FrameDecision::Ensemble,
                },
                op_score,
                threshold: self.policy.threshold(),
                little_ns: 0,
                big_ns: 0,
            });
            self.frames += 1;
            self.results.push(FrameResult {
                decision,
                scaled: little_scaled,
                little_scaled,
                big_scaled: None,
            });
        }

        // Phase 3: the big model over just the escalated rows, again in
        // one batched pass, then patch those rows' results.
        let k = self.big_rows.len();
        if k > 0 {
            let t_big = np_trace::start();
            let bo = self.big.forward_batched(
                self.pool,
                &mut self.scratch,
                &self.big_staged[..k * fl],
                k,
            );
            for (i, &b) in self.big_rows.iter().enumerate() {
                let big_scaled = [bo[i * 4], bo[i * 4 + 1], bo[i * 4 + 2], bo[i * 4 + 3]];
                let r = &mut self.results[b];
                r.big_scaled = Some(big_scaled);
                r.scaled = [
                    (r.little_scaled[0] + big_scaled[0]) / 2.0,
                    (r.little_scaled[1] + big_scaled[1]) / 2.0,
                    (r.little_scaled[2] + big_scaled[2]) / 2.0,
                    (r.little_scaled[3] + big_scaled[3]) / 2.0,
                ];
            }
            np_trace::finish(self.big_span, t_big, k as u64);
        }
        &self.results
    }

    /// Resets the policy at a sequence boundary (the next staged frame
    /// decides [`Decision::Ensemble`] again). Staged-but-unflushed frames
    /// are unaffected; statistics keep accumulating.
    pub fn reset(&mut self) {
        self.policy.reset();
    }

    /// Frames currently staged and awaiting a flush.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// The largest group one flush will carry.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Frames flushed since construction.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Fraction of flushed frames on which the big model ran.
    pub fn frac_big(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.big_frames as f64 / self.frames as f64
        }
    }

    /// The compiled (batch-planned) little program.
    pub fn little(&self) -> &QuantizedProgram {
        &self.little
    }

    /// The compiled (batch-planned) big program.
    pub fn big(&self) -> &QuantizedProgram {
        &self.big
    }

    /// Total steady-state scratch bytes backing the collector (sized for
    /// the larger of the two batched plans).
    pub fn scratch_bytes(&self) -> usize {
        self.scratch.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::FrameRunner;
    use np_nn::init::SmallRng;
    use np_tensor::Tensor;
    use np_zoo::ModelId;

    const CHW: (usize, usize, usize) = (1, 48, 80);

    fn quantized_pair() -> (QuantizedNetwork, QuantizedNetwork) {
        let mut rng = SmallRng::seed(21);
        let little = ModelId::F1.build_proxy(&mut rng);
        let big = ModelId::M10.build_proxy(&mut rng);
        let calib = frames(5, 77);
        (
            QuantizedNetwork::quantize(&little, &calib),
            QuantizedNetwork::quantize(&big, &calib),
        )
    }

    fn frames(n: usize, seed: u64) -> Tensor {
        let mut s = seed;
        let data: Vec<f32> = (0..n * CHW.1 * CHW.2)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((s >> 40) as i32 % 200) as f32 / 100.0 - 1.0
            })
            .collect();
        Tensor::from_vec(&[n, 1, CHW.1, CHW.2], data)
    }

    /// The collector must emit the exact FrameResult sequence a
    /// frame-by-frame FrameRunner produces — same decisions, same
    /// bit-identical outputs — regardless of how frames group into
    /// batches.
    #[test]
    fn collector_matches_frame_runner_exactly() {
        let (ql, qb) = quantized_pair();
        let fl = CHW.1 * CHW.2;
        let stream = frames(7, 5);
        // A threshold that makes the decision sequence non-trivial.
        let th = 0.05;

        let mut runner = FrameRunner::new(&ql, &qb, CHW, th, Pool::serial());
        let want: Vec<FrameResult> = (0..7)
            .map(|i| runner.run_frame(&stream.as_slice()[i * fl..(i + 1) * fl]))
            .collect();

        for max_batch in [1usize, 3, 8] {
            let mut collector =
                BatchCollector::new(&ql, &qb, CHW, th, Pool::serial(), max_batch, u64::MAX);
            let mut got = Vec::new();
            for i in 0..7 {
                if let Some(rs) = collector.push(&stream.as_slice()[i * fl..(i + 1) * fl], i as u64)
                {
                    got.extend_from_slice(rs);
                }
            }
            got.extend_from_slice(collector.flush());
            assert_eq!(got.len(), 7, "max_batch {max_batch}");
            for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                assert_eq!(g, w, "frame {i}, max_batch {max_batch}");
            }
        }
    }

    #[test]
    fn deadline_flushes_partial_batches() {
        let (ql, qb) = quantized_pair();
        let fl = CHW.1 * CHW.2;
        let stream = frames(3, 9);
        let mut collector = BatchCollector::new(&ql, &qb, CHW, 0.5, Pool::serial(), 8, 100);

        // Two frames inside the window: stay staged.
        assert!(collector.push(&stream.as_slice()[..fl], 0).is_none());
        assert!(collector.push(&stream.as_slice()[fl..2 * fl], 50).is_none());
        assert_eq!(collector.pending(), 2);
        // Poll before the deadline does nothing.
        assert!(collector.poll(99).is_none());
        // A frame on the deadline flushes all three.
        let rs = collector
            .push(&stream.as_slice()[2 * fl..3 * fl], 100)
            .expect("deadline flush");
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0].decision, Decision::Ensemble);
        assert_eq!(collector.pending(), 0);
        assert_eq!(collector.frames(), 3);
    }

    #[test]
    fn poll_flushes_a_quiet_stream() {
        let (ql, qb) = quantized_pair();
        let fl = CHW.1 * CHW.2;
        let stream = frames(1, 13);
        let mut collector = BatchCollector::new(&ql, &qb, CHW, 0.5, Pool::serial(), 8, 1000);
        assert!(collector.push(&stream.as_slice()[..fl], 0).is_none());
        assert!(collector.poll(500).is_none());
        let rs = collector.poll(1000).expect("deadline poll flush");
        assert_eq!(rs.len(), 1);
        // An empty flush is an empty slice, not an error.
        assert!(collector.flush().is_empty());
    }

    #[test]
    fn zero_deadline_behaves_like_frame_runner_cadence() {
        let (ql, qb) = quantized_pair();
        let fl = CHW.1 * CHW.2;
        let stream = frames(2, 17);
        let mut collector = BatchCollector::new(&ql, &qb, CHW, 0.5, Pool::serial(), 8, 0);
        // Every push flushes immediately: batch size 1 each time.
        let r0 = collector.push(&stream.as_slice()[..fl], 0).expect("flush");
        assert_eq!(r0.len(), 1);
        assert_eq!(r0[0].decision, Decision::Ensemble);
        let r1 = collector
            .push(&stream.as_slice()[fl..2 * fl], 1)
            .expect("flush");
        assert_eq!(r1.len(), 1);
    }
}
