//! Validation-set error maps for the Aux-HLC policy (paper Fig. 3).

use crate::features::FrameFeatures;
use np_dataset::GridSpec;
use serde::{Deserialize, Serialize};

/// Per-grid-cell advantage of the big model over the small one:
/// `E(i,j) = MAE_small(i,j) − MAE_big(i,j)`, computed on validation frames
/// whose ground-truth head lies in cell `(i,j)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorMap {
    grid: GridSpec,
    values: Vec<f32>,
    counts: Vec<usize>,
}

impl ErrorMap {
    /// Builds the map from validation-set features and the ground-truth
    /// cell of each frame.
    ///
    /// Cells never visited in validation get value 0 (no evidence either
    /// way — the policy will then fall back to the small model for low
    /// thresholds, which is the conservative choice).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree or any cell index is out of range.
    pub fn build(grid: GridSpec, features: &[FrameFeatures], truth_cells: &[usize]) -> ErrorMap {
        assert_eq!(features.len(), truth_cells.len(), "length mismatch");
        let n = grid.n_cells();
        let mut small_err = vec![0.0f32; n];
        let mut big_err = vec![0.0f32; n];
        let mut counts = vec![0usize; n];
        for (f, &cell) in features.iter().zip(truth_cells.iter()) {
            assert!(cell < n, "cell {cell} out of range {n}");
            small_err[cell] += f.small_pose.total_error(&f.truth);
            big_err[cell] += f.big_pose.total_error(&f.truth);
            counts[cell] += 1;
        }
        let values = (0..n)
            .map(|c| {
                if counts[c] == 0 {
                    0.0
                } else {
                    (small_err[c] - big_err[c]) / counts[c] as f32
                }
            })
            .collect();
        ErrorMap {
            grid,
            values,
            counts,
        }
    }

    /// The grid this map is defined over.
    pub fn grid(&self) -> GridSpec {
        self.grid
    }

    /// `E` value of a cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn value(&self, cell: usize) -> f32 {
        self.values[cell]
    }

    /// Validation samples that fell in a cell.
    pub fn count(&self, cell: usize) -> usize {
        self.counts[cell]
    }

    /// All values (for plotting Fig. 3).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mean `E` over border cells minus mean `E` over interior cells — a
    /// summary statistic of the paper's Fig. 3 claim that the big model's
    /// advantage concentrates at borders and corners.
    pub fn border_advantage(&self) -> f32 {
        let mut border = (0.0f32, 0usize);
        let mut interior = (0.0f32, 0usize);
        for c in 0..self.grid.n_cells() {
            if self.counts[c] == 0 {
                continue;
            }
            if self.grid.is_border(c) {
                border.0 += self.values[c];
                border.1 += 1;
            } else {
                interior.0 += self.values[c];
                interior.1 += 1;
            }
        }
        let b = if border.1 > 0 {
            border.0 / border.1 as f32
        } else {
            0.0
        };
        let i = if interior.1 > 0 {
            interior.0 / interior.1 as f32
        } else {
            0.0
        };
        b - i
    }

    /// Renders the map as an ASCII table (rows top to bottom).
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        for r in 0..self.grid.rows {
            for c in 0..self.grid.cols {
                let v = self.values[r * self.grid.cols + c];
                out.push_str(&format!("{v:>7.3}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_dataset::Pose;

    fn feature(small_err: f32, big_err: f32) -> FrameFeatures {
        // Truth at origin-ish; predictions offset along x by the error.
        let truth = Pose::new(1.0, 0.0, 0.0, 0.0);
        FrameFeatures {
            frame: 0,
            small_scaled: [0.0; 4],
            big_scaled: [0.0; 4],
            small_pose: Pose::new(1.0 + small_err, 0.0, 0.0, 0.0),
            big_pose: Pose::new(1.0 + big_err, 0.0, 0.0, 0.0),
            avg_pose: truth,
            truth,
            aux_cell: 0,
            aux_margin: 1.0,
        }
    }

    #[test]
    fn map_values_are_mae_differences() {
        let grid = GridSpec::GRID_2X2;
        let features = vec![
            feature(0.5, 0.1), // cell 0: E = 0.4
            feature(0.3, 0.1), // cell 0: E = 0.2 -> mean 0.3
            feature(0.2, 0.2), // cell 3: E = 0
        ];
        let cells = vec![0, 0, 3];
        let map = ErrorMap::build(grid, &features, &cells);
        assert!((map.value(0) - 0.3).abs() < 1e-5);
        assert_eq!(map.value(3), 0.0);
        assert_eq!(map.value(1), 0.0); // unvisited
        assert_eq!(map.count(0), 2);
        assert_eq!(map.count(1), 0);
    }

    #[test]
    fn border_advantage_positive_when_borders_hard() {
        let grid = GridSpec::GRID_3X3;
        // Centre cell (4) easy, corner cell (0) hard for the small model.
        let features = vec![feature(0.8, 0.1), feature(0.1, 0.1)];
        let cells = vec![0, 4];
        let map = ErrorMap::build(grid, &features, &cells);
        assert!(map.border_advantage() > 0.5);
    }

    #[test]
    fn ascii_rendering_has_grid_shape() {
        let grid = GridSpec::GRID_2X2;
        let map = ErrorMap::build(grid, &[], &[]);
        let s = map.to_ascii();
        assert_eq!(s.lines().count(), 2);
    }
}
