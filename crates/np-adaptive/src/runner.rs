//! Streaming big/little inference over compiled programs.
//!
//! [`crate::eval`] replays precomputed outputs, which is right for
//! threshold sweeps but sidesteps the actual runtime question: what does
//! one adaptive frame *cost* when the CNNs really execute? [`FrameRunner`]
//! is that runtime. It holds the little and big members of an ensemble as
//! pre-compiled [`QuantizedProgram`]s sharing a single [`QScratch`] (the
//! two never run concurrently — the big model only runs after the policy
//! has seen the little model's outputs), drives the OP policy frame by
//! frame, and allocates nothing in steady state: every activation of both
//! networks lives in the one planner-sized arena.
//!
//! ```text
//! frame ─▶ little (always) ─▶ OP score ─▶ threshold? ─▶ big + average
//!              └──────────────── shared QScratch ────────────┘
//! ```

use crate::policy::{AdaptivePolicy, Decision, OpPolicy};
use np_quant::{QScratch, QuantizedNetwork, QuantizedProgram};
use np_tensor::parallel::Pool;
use std::sync::Arc;

/// The outcome of one streamed frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameResult {
    /// What the policy chose (the first frame of a sequence is always
    /// [`Decision::Ensemble`]).
    pub decision: Decision,
    /// Final min-max-scaled outputs: the little model's alone, or the
    /// element-wise midpoint of both when the big model also ran.
    pub scaled: [f32; 4],
    /// The little model's scaled outputs (always available).
    pub little_scaled: [f32; 4],
    /// The big model's scaled outputs, when it ran.
    pub big_scaled: Option<[f32; 4]>,
}

/// A big/little ensemble compiled for frame-by-frame streaming.
///
/// Construction compiles both networks for the given input shape and
/// pre-sizes one shared scratch; [`Self::run_frame`] then performs zero
/// heap allocations per frame (with a serial pool).
pub struct FrameRunner {
    little: Arc<QuantizedProgram>,
    big: Arc<QuantizedProgram>,
    policy: OpPolicy,
    scratch: QScratch,
    pool: Pool,
    /// Spans covering the little/big inferences of one streamed frame,
    /// registered at construction so `run_frame` never touches the span
    /// registry.
    little_span: np_trace::SpanId,
    big_span: np_trace::SpanId,
    /// Frames streamed since construction (survives `reset`).
    frames: u64,
    /// Frames on which the big model ran.
    big_frames: u64,
}

impl FrameRunner {
    /// Compiles `little` and `big` for `chw` inputs and wires an OP policy
    /// with threshold `th`.
    ///
    /// # Panics
    ///
    /// Panics if either network does not produce exactly the 4 pose
    /// outputs the OP policy scores.
    pub fn new(
        little: &QuantizedNetwork,
        big: &QuantizedNetwork,
        chw: (usize, usize, usize),
        th: f32,
        pool: Pool,
    ) -> Self {
        Self::from_programs(
            little.compile_shared(chw),
            big.compile_shared(chw),
            th,
            pool,
        )
    }

    /// Builds a runner over already-compiled, shared programs. Because a
    /// [`QuantizedProgram`] is immutable after compilation (all per-run
    /// state lives in the scratch), any number of runners — across any
    /// number of threads — can share one `Arc` of packed weights; each
    /// runner still owns its private policy state and activation arena.
    /// This is the constructor the serving layer uses so N sessions cost
    /// one copy of the weights plus N arenas.
    ///
    /// # Panics
    ///
    /// Panics if either program does not regress exactly 4 outputs or the
    /// two were compiled for different input shapes.
    pub fn from_programs(
        little: Arc<QuantizedProgram>,
        big: Arc<QuantizedProgram>,
        th: f32,
        pool: Pool,
    ) -> Self {
        assert_eq!(
            little.output_len(),
            4,
            "little model must regress 4 outputs"
        );
        assert_eq!(big.output_len(), 4, "big model must regress 4 outputs");
        assert_eq!(
            little.input_chw(),
            big.input_chw(),
            "ensemble members must share an input shape"
        );
        let scratch = QScratch::for_programs(&[&little, &big]);
        let little_span = np_trace::register_span(&format!("runner/{}", little.name()));
        let big_span = np_trace::register_span(&format!("runner/{}", big.name()));
        FrameRunner {
            little,
            big,
            policy: OpPolicy::new(th),
            scratch,
            pool,
            little_span,
            big_span,
            frames: 0,
            big_frames: 0,
        }
    }

    /// Runs one float CHW frame through the ensemble: the little program
    /// always, the big one only when the OP policy fires, averaging scaled
    /// outputs when both ran (paper Eq. 1–2).
    pub fn run_frame(&mut self, frame: &[f32]) -> FrameResult {
        let t_little = np_trace::start();
        let little_scaled = run4(&self.little, self.pool, &mut self.scratch, frame);
        let little_ns = np_trace::finish(self.little_span, t_little, 0);
        // Score before decide_scaled advances the policy's history; NaN
        // marks the first frame of a sequence (no predecessor).
        let op_score = self
            .policy
            .pending_score(&little_scaled)
            .unwrap_or(f32::NAN);
        let decision = self.policy.decide_scaled(&little_scaled);
        let mut big_ns = 0;
        let result = if !decision.runs_big() {
            FrameResult {
                decision,
                scaled: little_scaled,
                little_scaled,
                big_scaled: None,
            }
        } else {
            let t_big = np_trace::start();
            let big_scaled = run4(&self.big, self.pool, &mut self.scratch, frame);
            big_ns = np_trace::finish(self.big_span, t_big, 0);
            let scaled = [
                (little_scaled[0] + big_scaled[0]) / 2.0,
                (little_scaled[1] + big_scaled[1]) / 2.0,
                (little_scaled[2] + big_scaled[2]) / 2.0,
                (little_scaled[3] + big_scaled[3]) / 2.0,
            ];
            FrameResult {
                decision,
                scaled,
                little_scaled,
                big_scaled: Some(big_scaled),
            }
        };
        np_trace::counter_add(np_trace::Counter::FramesTotal, 1);
        self.frames += 1;
        if decision.runs_big() {
            np_trace::counter_add(np_trace::Counter::FramesBig, 1);
            self.big_frames += 1;
        }
        np_trace::record_frame(np_trace::FrameEvent {
            frame: self.frames - 1,
            decision: match decision {
                Decision::Small => np_trace::FrameDecision::Small,
                Decision::Big => np_trace::FrameDecision::Big,
                Decision::Ensemble => np_trace::FrameDecision::Ensemble,
            },
            op_score,
            threshold: self.policy.threshold(),
            little_ns,
            big_ns,
        });
        result
    }

    /// Resets the policy at a sequence boundary (the next frame runs the
    /// full ensemble again). Frame statistics keep accumulating — they
    /// describe the runner's whole lifetime, not one sequence.
    pub fn reset(&mut self) {
        self.policy.reset();
    }

    /// Frames streamed since construction.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Fraction of streamed frames on which the big model ran — the
    /// running `frac_big` the paper's cost model (Eq. 2) prices. `0.0`
    /// before any frame has run.
    pub fn frac_big(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.big_frames as f64 / self.frames as f64
        }
    }

    /// The compiled little program.
    pub fn little(&self) -> &QuantizedProgram {
        &self.little
    }

    /// The compiled big program.
    pub fn big(&self) -> &QuantizedProgram {
        &self.big
    }

    /// Peak bytes of the shared activation arena (the larger of the two
    /// programs' plans — they time-share it).
    pub fn arena_bytes(&self) -> usize {
        self.little.arena_bytes().max(self.big.arena_bytes())
    }

    /// Total steady-state scratch bytes backing the runner (activation
    /// arena + im2row matrix + f32 output staging), as sized for the
    /// larger of the two programs. Together with
    /// [`Self::packed_weight_bytes`] this is the runner's whole
    /// steady-state memory footprint.
    pub fn scratch_bytes(&self) -> usize {
        self.scratch.bytes()
    }

    /// Bytes of pre-packed weights held by both compiled programs
    /// (panel-padded conv filters included — the microkernel pads channel
    /// counts up to whole panels).
    pub fn packed_weight_bytes(&self) -> usize {
        self.little.packed_weight_bytes() + self.big.packed_weight_bytes()
    }
}

fn run4(program: &QuantizedProgram, pool: Pool, scratch: &mut QScratch, frame: &[f32]) -> [f32; 4] {
    let out = program.forward_prepacked(pool, scratch, frame);
    [out[0], out[1], out[2], out[3]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_nn::init::SmallRng;
    use np_tensor::Tensor;
    use np_zoo::ModelId;

    const CHW: (usize, usize, usize) = (1, 48, 80);

    fn quantized_pair() -> (QuantizedNetwork, QuantizedNetwork) {
        let mut rng = SmallRng::seed(21);
        let little = ModelId::F1.build_proxy(&mut rng);
        let big = ModelId::M10.build_proxy(&mut rng);
        let calib = calib(5, 77);
        (
            QuantizedNetwork::quantize(&little, &calib),
            QuantizedNetwork::quantize(&big, &calib),
        )
    }

    fn calib(n: usize, seed: u64) -> Tensor {
        let mut s = seed;
        let data: Vec<f32> = (0..n * CHW.1 * CHW.2)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((s >> 40) as i32 % 200) as f32 / 100.0 - 1.0
            })
            .collect();
        Tensor::from_vec(&[n, 1, CHW.1, CHW.2], data)
    }

    #[test]
    fn first_frame_is_ensemble_and_matches_networks() {
        let (ql, qb) = quantized_pair();
        let mut runner = FrameRunner::new(&ql, &qb, CHW, 0.05, Pool::serial());
        let frame = calib(1, 3);

        let r = runner.run_frame(frame.as_slice());
        assert_eq!(r.decision, Decision::Ensemble);

        // The streamed outputs are exactly the networks' own outputs.
        let want_l = ql.forward_with(Pool::serial(), &frame);
        let want_b = qb.forward_with(Pool::serial(), &frame);
        assert_eq!(&r.little_scaled[..], want_l.as_slice());
        assert_eq!(&r.big_scaled.expect("big ran")[..], want_b.as_slice());
        for i in 0..4 {
            let mid = (want_l.as_slice()[i] + want_b.as_slice()[i]) / 2.0;
            assert_eq!(r.scaled[i], mid);
        }
    }

    #[test]
    fn stationary_frames_settle_to_small() {
        let (ql, qb) = quantized_pair();
        // Generous threshold: identical frames have OP score 0.
        let mut runner = FrameRunner::new(&ql, &qb, CHW, 0.5, Pool::serial());
        let frame = calib(1, 4);

        assert_eq!(
            runner.run_frame(frame.as_slice()).decision,
            Decision::Ensemble
        );
        let r = runner.run_frame(frame.as_slice());
        assert_eq!(r.decision, Decision::Small);
        assert_eq!(r.big_scaled, None);
        assert_eq!(r.scaled, r.little_scaled);
    }

    #[test]
    fn reset_restarts_the_sequence() {
        let (ql, qb) = quantized_pair();
        let mut runner = FrameRunner::new(&ql, &qb, CHW, 0.5, Pool::serial());
        let frame = calib(1, 5);
        let _ = runner.run_frame(frame.as_slice());
        runner.reset();
        assert_eq!(
            runner.run_frame(frame.as_slice()).decision,
            Decision::Ensemble
        );
    }

    #[test]
    fn frac_big_tracks_decisions() {
        let (ql, qb) = quantized_pair();
        let mut runner = FrameRunner::new(&ql, &qb, CHW, 0.5, Pool::serial());
        assert_eq!(runner.frames(), 0);
        assert_eq!(runner.frac_big(), 0.0);
        let frame = calib(1, 9);
        // Frame 0 is always Ensemble, identical follow-ups settle to Small.
        for _ in 0..4 {
            let _ = runner.run_frame(frame.as_slice());
        }
        assert_eq!(runner.frames(), 4);
        assert_eq!(runner.frac_big(), 0.25);
    }

    #[test]
    fn runners_sharing_arc_programs_match_owned_compilation() {
        let (ql, qb) = quantized_pair();
        let little = ql.compile_shared(CHW);
        let big = qb.compile_shared(CHW);
        let mut owned = FrameRunner::new(&ql, &qb, CHW, 0.05, Pool::serial());
        let mut a = FrameRunner::from_programs(little.clone(), big.clone(), 0.05, Pool::serial());
        let mut b = FrameRunner::from_programs(little, big, 0.05, Pool::serial());
        for seed in [3u64, 4, 9] {
            let frame = calib(1, seed);
            let want = owned.run_frame(frame.as_slice());
            assert_eq!(a.run_frame(frame.as_slice()), want);
            assert_eq!(b.run_frame(frame.as_slice()), want);
        }
    }

    #[test]
    fn shared_arena_is_the_max_of_both_plans() {
        let (ql, qb) = quantized_pair();
        let runner = FrameRunner::new(&ql, &qb, CHW, 0.1, Pool::serial());
        assert_eq!(
            runner.arena_bytes(),
            runner
                .little()
                .arena_bytes()
                .max(runner.big().arena_bytes())
        );
        assert!(runner.arena_bytes() > 0);
        // The scratch backs the arena plus the lowering/output staging, so
        // it can never be smaller than the shared arena itself.
        assert!(runner.scratch_bytes() >= runner.arena_bytes());
        assert!(runner.packed_weight_bytes() > 0);
    }
}
