//! The adaptation policies.

use crate::error_map::ErrorMap;
use crate::features::FrameFeatures;
use np_nn::init::SmallRng;

/// What to execute for a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Run only the small model.
    Small,
    /// Run only the big model.
    Big,
    /// Run both and average the (scaled) outputs — OP's hard-frame path.
    Ensemble,
}

impl Decision {
    /// True when the big model runs.
    pub fn runs_big(self) -> bool {
        matches!(self, Decision::Big | Decision::Ensemble)
    }

    /// True when the small model runs.
    pub fn runs_small(self) -> bool {
        matches!(self, Decision::Small | Decision::Ensemble)
    }
}

/// A per-frame model-selection policy.
///
/// Policies are stateful over a sequence (OP tracks the previous output
/// sum) and are `reset` at sequence boundaries.
pub trait AdaptivePolicy {
    /// Policy name for reports (e.g. `"OP"`, `"Aux-HLC 8x6"`).
    fn name(&self) -> String;

    /// Resets per-sequence state.
    fn reset(&mut self);

    /// Decides what to run for the next frame of the current sequence.
    fn decide(&mut self, frame: &FrameFeatures) -> Decision;

    /// True when the policy requires the auxiliary CNN every frame
    /// (changes the cost model from paper Eq. 2 to Eq. 4).
    fn uses_aux(&self) -> bool {
        false
    }
}

/// Output-based Partitioning (paper Sec. III-B1).
///
/// Runs the small model every frame; computes
/// `OP_t = |O_sum,t − O_sum,t−1|` from its min-max-scaled outputs and
/// invokes the big model (averaging both predictions) when `OP_t > th`.
///
/// The first frame of every sequence has no predecessor; the paper does
/// not special-case it, and we conservatively run the big model there.
#[derive(Debug, Clone)]
pub struct OpPolicy {
    th: f32,
    prev_sum: Option<f32>,
}

impl OpPolicy {
    /// Creates the policy with threshold `th` (in scaled-output units).
    pub fn new(th: f32) -> Self {
        OpPolicy { th, prev_sum: None }
    }

    /// The OP score of a frame given the previous output sum.
    pub fn score(prev_sum: f32, small_scaled: &[f32; 4]) -> f32 {
        let sum: f32 = small_scaled.iter().sum();
        (sum - prev_sum).abs()
    }

    /// The decision threshold in scaled-output units.
    pub fn threshold(&self) -> f32 {
        self.th
    }

    /// The OP score the next [`Self::decide_scaled`] call would compare
    /// against the threshold, without advancing policy state. `None` on
    /// the first frame of a sequence (no predecessor to diff against).
    pub fn pending_score(&self, small_scaled: &[f32; 4]) -> Option<f32> {
        self.prev_sum.map(|prev| Self::score(prev, small_scaled))
    }

    /// Decides directly from the small model's scaled outputs — the live
    /// streaming entry used by [`crate::runner::FrameRunner`], which has
    /// no precomputed [`FrameFeatures`].
    pub fn decide_scaled(&mut self, small_scaled: &[f32; 4]) -> Decision {
        let sum: f32 = small_scaled.iter().sum();
        let decision = match self.prev_sum {
            None => Decision::Ensemble,
            Some(prev) => {
                if (sum - prev).abs() > self.th {
                    Decision::Ensemble
                } else {
                    Decision::Small
                }
            }
        };
        self.prev_sum = Some(sum);
        decision
    }
}

impl AdaptivePolicy for OpPolicy {
    fn name(&self) -> String {
        format!("OP(th={:.3})", self.th)
    }

    fn reset(&mut self) {
        self.prev_sum = None;
    }

    fn decide(&mut self, frame: &FrameFeatures) -> Decision {
        self.decide_scaled(&frame.small_scaled)
    }
}

/// Auxiliary score-margin policy (paper Eq. 3): big model iff the aux
/// classifier's score margin is ≤ `th`.
#[derive(Debug, Clone)]
pub struct AuxSmPolicy {
    th: f32,
    grid_name: String,
}

impl AuxSmPolicy {
    /// Creates the policy with margin threshold `th` in `[0, 1]`.
    pub fn new(th: f32, grid_name: impl Into<String>) -> Self {
        AuxSmPolicy {
            th,
            grid_name: grid_name.into(),
        }
    }
}

impl AdaptivePolicy for AuxSmPolicy {
    fn name(&self) -> String {
        format!("Aux-SM {}(th={:.3})", self.grid_name, self.th)
    }

    fn reset(&mut self) {}

    fn decide(&mut self, frame: &FrameFeatures) -> Decision {
        if frame.aux_margin <= self.th {
            Decision::Big
        } else {
            Decision::Small
        }
    }

    fn uses_aux(&self) -> bool {
        true
    }
}

/// Auxiliary head-localization-class policy: big model iff the predicted
/// cell's error-map value exceeds `th`.
#[derive(Debug, Clone)]
pub struct AuxHlcPolicy {
    th: f32,
    map: ErrorMap,
}

impl AuxHlcPolicy {
    /// Creates the policy from a validation-set [`ErrorMap`].
    pub fn new(th: f32, map: ErrorMap) -> Self {
        AuxHlcPolicy { th, map }
    }

    /// The underlying error map.
    pub fn map(&self) -> &ErrorMap {
        &self.map
    }
}

impl AdaptivePolicy for AuxHlcPolicy {
    fn name(&self) -> String {
        format!("Aux-HLC {}(th={:.3})", self.map.grid(), self.th)
    }

    fn reset(&mut self) {}

    fn decide(&mut self, frame: &FrameFeatures) -> Decision {
        if self.map.value(frame.aux_cell) > self.th {
            Decision::Big
        } else {
            Decision::Small
        }
    }

    fn uses_aux(&self) -> bool {
        true
    }
}

/// Zero-cost random baseline: big model with probability `p_big`.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    p_big: f64,
    rng: SmallRng,
    seed: u64,
}

impl RandomPolicy {
    /// Creates the baseline with the given big-model probability.
    pub fn new(p_big: f64, seed: u64) -> Self {
        RandomPolicy {
            p_big,
            rng: SmallRng::seed(seed),
            seed,
        }
    }
}

impl AdaptivePolicy for RandomPolicy {
    fn name(&self) -> String {
        format!("Random(p={:.2})", self.p_big)
    }

    fn reset(&mut self) {
        // Deterministic per-policy: reseed so evaluation order does not
        // change results.
        self.rng = SmallRng::seed(self.seed);
    }

    fn decide(&mut self, _frame: &FrameFeatures) -> Decision {
        if self.rng.chance(self.p_big) {
            Decision::Big
        } else {
            Decision::Small
        }
    }
}

/// Ideal policy (paper Sec. III-B): runs the big model iff it actually has
/// lower total error on this frame. Not realizable (needs ground truth) —
/// used as the upper bound in analyses.
#[derive(Debug, Clone, Default)]
pub struct OraclePolicy;

impl OraclePolicy {
    /// Creates the oracle.
    pub fn new() -> Self {
        OraclePolicy
    }
}

impl AdaptivePolicy for OraclePolicy {
    fn name(&self) -> String {
        "Oracle".to_string()
    }

    fn reset(&mut self) {}

    fn decide(&mut self, frame: &FrameFeatures) -> Decision {
        let small = frame.small_pose.total_error(&frame.truth);
        let big = frame.big_pose.total_error(&frame.truth);
        if big < small {
            Decision::Big
        } else {
            Decision::Small
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_dataset::{GridSpec, Pose};

    fn frame(small_scaled: [f32; 4], margin: f32, cell: usize) -> FrameFeatures {
        FrameFeatures {
            frame: 0,
            small_scaled,
            big_scaled: [0.5; 4],
            small_pose: Pose::new(1.0, 0.0, 0.0, 0.0),
            big_pose: Pose::new(1.0, 0.0, 0.0, 0.0),
            avg_pose: Pose::new(1.0, 0.0, 0.0, 0.0),
            truth: Pose::new(1.0, 0.0, 0.0, 0.0),
            aux_cell: cell,
            aux_margin: margin,
        }
    }

    #[test]
    fn op_triggers_on_output_jump() {
        let mut op = OpPolicy::new(0.1);
        // First frame: conservative ensemble.
        assert_eq!(op.decide(&frame([0.5; 4], 1.0, 0)), Decision::Ensemble);
        // Stationary outputs: small.
        assert_eq!(op.decide(&frame([0.5; 4], 1.0, 0)), Decision::Small);
        // Jump of 0.4 in the sum: ensemble.
        assert_eq!(
            op.decide(&frame([0.6, 0.5, 0.5, 0.5], 1.0, 0)),
            Decision::Small
        );
        assert_eq!(
            op.decide(&frame([0.9, 0.6, 0.5, 0.5], 1.0, 0)),
            Decision::Ensemble
        );
    }

    #[test]
    fn op_reset_clears_history() {
        let mut op = OpPolicy::new(0.1);
        let _ = op.decide(&frame([0.5; 4], 1.0, 0));
        op.reset();
        assert_eq!(op.decide(&frame([0.5; 4], 1.0, 0)), Decision::Ensemble);
    }

    #[test]
    fn aux_sm_threshold_semantics() {
        let mut p = AuxSmPolicy::new(0.3, "2x2");
        assert_eq!(p.decide(&frame([0.0; 4], 0.2, 0)), Decision::Big);
        assert_eq!(p.decide(&frame([0.0; 4], 0.3, 0)), Decision::Big); // <= th
        assert_eq!(p.decide(&frame([0.0; 4], 0.4, 0)), Decision::Small);
        assert!(p.uses_aux());
    }

    #[test]
    fn aux_hlc_uses_error_map() {
        let grid = GridSpec::GRID_2X2;
        // Build a map where cell 0 favours big strongly.
        let truth = Pose::new(1.0, 0.0, 0.0, 0.0);
        let make = |cell: usize, s_err: f32| FrameFeatures {
            frame: 0,
            small_scaled: [0.0; 4],
            big_scaled: [0.0; 4],
            small_pose: Pose::new(1.0 + s_err, 0.0, 0.0, 0.0),
            big_pose: truth,
            avg_pose: truth,
            truth,
            aux_cell: cell,
            aux_margin: 0.5,
        };
        let features = vec![make(0, 0.9), make(1, 0.05)];
        let map = ErrorMap::build(grid, &features, &[0, 1]);
        let mut p = AuxHlcPolicy::new(0.5, map);
        assert_eq!(p.decide(&frame([0.0; 4], 0.5, 0)), Decision::Big);
        assert_eq!(p.decide(&frame([0.0; 4], 0.5, 1)), Decision::Small);
    }

    #[test]
    fn random_policy_respects_probability() {
        for (p, lo, hi) in [(0.0, 0.0, 0.001), (1.0, 0.999, 1.0), (0.5, 0.4, 0.6)] {
            let mut pol = RandomPolicy::new(p, 1);
            let n = 2000;
            let big = (0..n)
                .filter(|_| pol.decide(&frame([0.0; 4], 0.5, 0)).runs_big())
                .count();
            let frac = big as f64 / n as f64;
            assert!((lo..=hi).contains(&frac), "p={p}: frac {frac}");
        }
    }

    #[test]
    fn random_policy_is_deterministic_across_resets() {
        let mut a = RandomPolicy::new(0.5, 7);
        let seq1: Vec<Decision> = (0..20)
            .map(|_| a.decide(&frame([0.0; 4], 0.5, 0)))
            .collect();
        a.reset();
        let seq2: Vec<Decision> = (0..20)
            .map(|_| a.decide(&frame([0.0; 4], 0.5, 0)))
            .collect();
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn oracle_picks_the_better_model() {
        let truth = Pose::new(1.0, 0.0, 0.0, 0.0);
        let mut f = frame([0.0; 4], 0.5, 0);
        f.truth = truth;
        f.small_pose = Pose::new(1.5, 0.0, 0.0, 0.0);
        f.big_pose = Pose::new(1.1, 0.0, 0.0, 0.0);
        let mut oracle = OraclePolicy::new();
        assert_eq!(oracle.decide(&f), Decision::Big);
        f.small_pose = Pose::new(1.01, 0.0, 0.0, 0.0);
        assert_eq!(oracle.decide(&f), Decision::Small);
    }
}
