//! Decision pricing on the GAP8 model (paper Eqs. 2 and 4).

use crate::policy::Decision;
use np_dory::DeploymentPlan;
use np_gap8::perf::CycleBreakdown;
use np_gap8::power::PowerModel;
use np_gap8::Gap8Config;

/// The paper's two ensembles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnsembleId {
    /// D1 = (F1, M1.0).
    D1,
    /// D2 = (F2, M1.0).
    D2,
}

impl std::fmt::Display for EnsembleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnsembleId::D1 => f.write_str("D1"),
            EnsembleId::D2 => f.write_str("D2"),
        }
    }
}

/// Per-decision cycle costs derived from the deployment plans of the
/// ensemble members (and the auxiliary CNN for Aux policies).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Small model cycles.
    pub small: CycleBreakdown,
    /// Big model cycles.
    pub big: CycleBreakdown,
    /// Auxiliary CNN cycles.
    pub aux: CycleBreakdown,
    /// Policy decision logic itself (comparisons on the FC — negligible
    /// but modeled, supporting the paper's claim that policy cost must not
    /// nullify the gains).
    pub decision_overhead: CycleBreakdown,
    /// SoC configuration for unit conversion.
    pub config: Gap8Config,
    /// Power model for energy accounting.
    pub power: PowerModel,
    /// True when every source plan was priced by a fitted calibration
    /// artifact — i.e. the policy thresholds below rest on measured, not
    /// analytic, per-layer costs.
    pub calibrated: bool,
}

impl CostModel {
    /// Builds the model from deployment plans.
    pub fn new(small: &DeploymentPlan, big: &DeploymentPlan, aux: &DeploymentPlan) -> CostModel {
        CostModel {
            small: small.cycles,
            big: big.cycles,
            aux: aux.cycles,
            decision_overhead: CycleBreakdown {
                compute: 0,
                dma_stall: 0,
                setup: 200,
            },
            config: small.config.clone(),
            power: PowerModel::default(),
            calibrated: small.calibrated && big.calibrated && aux.calibrated,
        }
    }

    /// Cycles of one frame under a decision, per the paper's accounting:
    ///
    /// * OP-style decisions (`Ensemble` = both models) never need the aux
    ///   CNN (`uses_aux = false`): `C = C_small + 1(big) · C_big` (Eq. 2).
    /// * Aux policies (`uses_aux = true`) pay the aux CNN every frame and
    ///   then exactly one of the two models (Eq. 4).
    pub fn frame_cycles(&self, decision: Decision, uses_aux: bool) -> CycleBreakdown {
        let mut total = self.decision_overhead;
        if uses_aux {
            total = total.add(&self.aux);
        }
        if decision.runs_small() {
            total = total.add(&self.small);
        }
        if decision.runs_big() {
            total = total.add(&self.big);
        }
        total
    }

    /// Latency in milliseconds of a cycle breakdown.
    pub fn to_ms(&self, cycles: &CycleBreakdown) -> f64 {
        self.config.cycles_to_ms(cycles.total())
    }

    /// Energy in millijoules of a cycle breakdown.
    pub fn to_mj(&self, cycles: &CycleBreakdown) -> f64 {
        self.power.energy_mj(cycles, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        let cfg = Gap8Config::default();
        CostModel {
            small: CycleBreakdown {
                compute: 1000,
                dma_stall: 100,
                setup: 10,
            },
            big: CycleBreakdown {
                compute: 3000,
                dma_stall: 300,
                setup: 10,
            },
            aux: CycleBreakdown {
                compute: 100,
                dma_stall: 10,
                setup: 10,
            },
            decision_overhead: CycleBreakdown {
                compute: 0,
                dma_stall: 0,
                setup: 1,
            },
            config: cfg,
            power: PowerModel::default(),
            calibrated: false,
        }
    }

    #[test]
    fn eq2_op_accounting() {
        let m = model();
        // OP easy frame: small only.
        let easy = m.frame_cycles(Decision::Small, false);
        assert_eq!(easy.total(), 1110 + 1);
        // OP hard frame: both models.
        let hard = m.frame_cycles(Decision::Ensemble, false);
        assert_eq!(hard.total(), 1110 + 3310 + 1);
    }

    #[test]
    fn eq4_aux_accounting() {
        let m = model();
        // Aux easy frame: aux + small.
        let easy = m.frame_cycles(Decision::Small, true);
        assert_eq!(easy.total(), 120 + 1110 + 1);
        // Aux hard frame: aux + big (small is skipped).
        let hard = m.frame_cycles(Decision::Big, true);
        assert_eq!(hard.total(), 120 + 3310 + 1);
    }

    #[test]
    fn aux_policy_cheaper_than_op_when_big_dominates() {
        let m = model();
        // When every frame is hard: Aux runs aux+big, OP runs small+big.
        let aux_hard = m.frame_cycles(Decision::Big, true).total();
        let op_hard = m.frame_cycles(Decision::Ensemble, false).total();
        assert!(aux_hard < op_hard);
    }

    #[test]
    fn decision_overhead_is_negligible() {
        let m = model();
        let overhead = m.decision_overhead.total() as f64;
        let small = m.small.total() as f64;
        assert!(overhead < 0.01 * small);
    }
}
