//! # nanopose
//!
//! Umbrella crate of the `nanopose` workspace — a Rust reproduction of
//! *"Adaptive Deep Learning for Efficient Visual Pose Estimation aboard
//! Ultra-low-power Nano-drones"* (Motetti et al., DATE 2024).
//!
//! This crate re-exports the workspace members under stable module names;
//! see the README for the architecture overview and `np-bench` for the
//! binaries that regenerate every table and figure of the paper.
//!
//! ```
//! use nanopose::zoo::ModelId;
//!
//! // The paper-exact F1 architecture prices out at Table I's MAC count.
//! let macs = ModelId::F1.paper_desc().macs();
//! assert!((macs as f64 / 1e6 - 4.51).abs() < 0.1);
//! ```

pub use np_adaptive as adaptive;
pub use np_calib as calib;
pub use np_control as control;
pub use np_dataset as dataset;
pub use np_dory as dory;
pub use np_gap8 as gap8;
pub use np_nn as nn;
pub use np_quant as quant;
pub use np_serve as serve;
pub use np_tensor as tensor;
pub use np_trace as trace;
pub use np_zoo as zoo;
