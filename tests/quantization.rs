//! Cross-crate integration: the full quantization path — train → BN fold →
//! calibrate → int8 → (optionally QAT) — preserves enough accuracy to be
//! deployment-equivalent, on a real zoo model.

use nanopose::dataset::{DatasetConfig, PoseDataset};
use nanopose::nn::init::SmallRng;
use nanopose::quant::qat::{finetune_qat, QatConfig};
use nanopose::quant::QuantizedNetwork;
use nanopose::zoo::{train_regressor, ModelId, TrainRecipe};

#[test]
fn int8_f1_stays_close_to_float() {
    let data = PoseDataset::generate(&DatasetConfig {
        n_sequences: 14,
        frames_per_seq: 30,
        ..DatasetConfig::known()
    });
    let mut rng = SmallRng::seed(31);
    let mut model = ModelId::F1.build_proxy(&mut rng);
    train_regressor(
        &mut model,
        &data,
        &TrainRecipe {
            epochs: 6,
            ..TrainRecipe::fast_test()
        },
    );

    let test = data.test_indices();
    let fp_mae = nanopose::zoo::evaluate_mae(&mut model, &data, &test).sum();

    let calib_idx: Vec<usize> = data.train_indices().into_iter().take(64).collect();
    let calib = data.images_tensor(&calib_idx);
    let qnet = QuantizedNetwork::quantize(&model, &calib);

    // Evaluate the int8 network on the same frames.
    let scaler = *data.scaler();
    let mut q_mae = 0.0f32;
    for chunk in test.chunks(64) {
        let x = data.images_tensor(chunk);
        let y = qnet.forward(&x);
        for (bi, &i) in chunk.iter().enumerate() {
            let o = &y.as_slice()[bi * 4..(bi + 1) * 4];
            let pred = scaler.unscale([o[0], o[1], o[2], o[3]]);
            q_mae += pred.total_error(&data.frame(i).pose);
        }
    }
    q_mae /= test.len() as f32;

    // Int8 must not cost more than 20% extra MAE on a trained model.
    assert!(
        q_mae < fp_mae * 1.2 + 0.05,
        "int8 degraded too much: {q_mae} vs f32 {fp_mae}"
    );
}

#[test]
fn qat_finetune_runs_on_zoo_model() {
    let data = PoseDataset::generate(&DatasetConfig {
        n_sequences: 10,
        frames_per_seq: 20,
        ..DatasetConfig::known()
    });
    let mut rng = SmallRng::seed(32);
    let mut model = ModelId::F1.build_proxy(&mut rng);
    train_regressor(&mut model, &data, &TrainRecipe::fast_test());

    let train = data.regression_data(&data.train_indices());
    let loss = finetune_qat(
        &mut model,
        &train,
        QatConfig {
            epochs: 1,
            ..QatConfig::default()
        },
    );
    assert!(loss.is_finite() && loss < 1.0, "QAT loss {loss}");

    // The fine-tuned model still quantizes and runs.
    let calib = data.images_tensor(&data.train_indices()[..16]);
    let qnet = QuantizedNetwork::quantize(&model, &calib);
    let y = qnet.forward(&data.images_tensor(&data.test_indices()[..4]));
    assert_eq!(y.shape()[1], 4);
    assert!(y.as_slice().iter().all(|v| v.is_finite()));
}
