//! Cross-crate integration: every zoo architecture deploys on the GAP8
//! model and the resulting latency/memory relationships match the paper's
//! qualitative structure.

use nanopose::dataset::GridSpec;
use nanopose::dory::{deploy, plan::ensemble_l2_bytes};
use nanopose::gap8::power::PowerModel;
use nanopose::gap8::Gap8Config;
use nanopose::zoo::ModelId;

fn plans() -> [nanopose::dory::DeploymentPlan; 4] {
    let gap8 = Gap8Config::default();
    [
        deploy(&ModelId::F1.paper_desc(), &gap8).expect("F1 deploys"),
        deploy(&ModelId::F2.paper_desc(), &gap8).expect("F2 deploys"),
        deploy(&ModelId::M10.paper_desc(), &gap8).expect("M1.0 deploys"),
        deploy(&ModelId::Aux(GridSpec::GRID_8X6).paper_desc(), &gap8).expect("aux deploys"),
    ]
}

#[test]
fn latency_ordering_matches_table2() {
    let [f1, f2, m10, aux] = plans();
    // Paper Table II: 7.06 < 8.82 < 21.76 ms; aux far below all.
    assert!(f1.latency_ms() < f2.latency_ms());
    assert!(f2.latency_ms() < m10.latency_ms());
    assert!(aux.latency_ms() < 0.5 * f1.latency_ms());
}

#[test]
fn mobilenet_is_least_cycle_efficient_per_mac() {
    let [f1, f2, m10, _] = plans();
    let eff = |p: &nanopose::dory::DeploymentPlan, macs: u64| macs as f64 / p.total_cycles() as f64;
    let f1_eff = eff(&f1, ModelId::F1.paper_desc().macs());
    let f2_eff = eff(&f2, ModelId::F2.paper_desc().macs());
    let m10_eff = eff(&m10, ModelId::M10.paper_desc().macs());
    // The depthwise layers make MobileNet the least efficient per MAC —
    // the reason its 2.5x MACs became 3x latency in the paper.
    assert!(m10_eff < f1_eff, "m10 {m10_eff} vs f1 {f1_eff}");
    assert!(m10_eff < f2_eff, "m10 {m10_eff} vs f2 {f2_eff}");
}

#[test]
fn latencies_in_paper_magnitude_range() {
    let [f1, f2, m10, _] = plans();
    // Within 2x of the paper's absolute numbers (7.06 / 8.82 / 21.76 ms).
    for (plan, paper_ms) in [(&f1, 7.06), (&f2, 8.82), (&m10, 21.76)] {
        let ratio = plan.latency_ms() / paper_ms;
        assert!(
            (0.5..2.0).contains(&ratio),
            "{}: {:.2} ms vs paper {paper_ms} ms",
            plan.network,
            plan.latency_ms()
        );
    }
}

#[test]
fn energy_within_the_90mw_envelope() {
    let [f1, f2, m10, aux] = plans();
    let power = PowerModel::default();
    let cfg = Gap8Config::default();
    for plan in [&f1, &f2, &m10, &aux] {
        let avg_w = power.average_power_w(&plan.cycles, &cfg);
        assert!(
            avg_w < 0.105,
            "{} exceeds the power envelope: {avg_w} W",
            plan.network
        );
    }
}

#[test]
fn every_ensemble_fits_l2() {
    let cfg = Gap8Config::default();
    let f1 = ModelId::F1.paper_desc();
    let f2 = ModelId::F2.paper_desc();
    let m10 = ModelId::M10.paper_desc();
    let aux = ModelId::Aux(GridSpec::GRID_8X6).paper_desc();
    // D1 with aux (3 networks resident) is the largest deployment of the
    // paper's Table II; it must fit 512 kB L2.
    for nets in [
        vec![&f1, &m10, &aux],
        vec![&f2, &m10],
        vec![&f2, &m10, &aux],
    ] {
        let bytes = ensemble_l2_bytes(&nets);
        assert!(bytes < cfg.l2_bytes, "ensemble needs {bytes} B");
    }
}

#[test]
fn ensemble_memory_below_member_sum() {
    // Table II note: ensemble memory < sum of members because the
    // activation buffer is shared.
    let f1 = ModelId::F1.paper_desc();
    let m10 = ModelId::M10.paper_desc();
    let gap8 = Gap8Config::default();
    let sum = deploy(&f1, &gap8).expect("fits").l2_bytes()
        + deploy(&m10, &gap8).expect("fits").l2_bytes();
    assert!(ensemble_l2_bytes(&[&f1, &m10]) < sum);
}
