//! Cross-crate integration: the full adaptive pipeline at smoke scale —
//! dataset → training → quantization → evaluation tables → policies →
//! costs. Uses small models and few epochs; asserts structural invariants
//! rather than paper-level accuracy.

use nanopose::adaptive::features::{Backend, EvalTable};
use nanopose::adaptive::policy::AdaptivePolicy;
use nanopose::adaptive::sweep::{pareto_front, sweep_op, sweep_random};
use nanopose::adaptive::{
    evaluate_policy, CostModel, ErrorMap, OpPolicy, OraclePolicy, RandomPolicy,
};
use nanopose::dataset::{DatasetConfig, GridSpec, PoseDataset};
use nanopose::dory::deploy;
use nanopose::gap8::Gap8Config;
use nanopose::nn::init::SmallRng;
use nanopose::nn::Sequential;
use nanopose::zoo::{train_aux, train_regressor, ModelId, TrainRecipe};

struct Pipeline {
    data: PoseDataset,
    small: Sequential,
    big: Sequential,
    aux: Sequential,
    costs: CostModel,
    table: EvalTable,
}

fn build_pipeline() -> Pipeline {
    let data = PoseDataset::generate(&DatasetConfig {
        n_sequences: 12,
        frames_per_seq: 24,
        ..DatasetConfig::known()
    });
    let grid = GridSpec::GRID_2X2;
    let mut rng = SmallRng::seed(11);
    let mut small = ModelId::F1.build_proxy(&mut rng);
    let mut big = ModelId::M10.build_proxy(&mut rng);
    let mut aux = ModelId::Aux(grid).build_proxy(&mut rng);
    let recipe = TrainRecipe::fast_test();
    train_regressor(&mut small, &data, &recipe);
    train_regressor(&mut big, &data, &recipe);
    train_aux(&mut aux, &data, grid, &TrainRecipe { lr: 1e-2, ..recipe });

    let gap8 = Gap8Config::default();
    let costs = CostModel::new(
        &deploy(&ModelId::F1.paper_desc(), &gap8).expect("F1 fits"),
        &deploy(&ModelId::M10.paper_desc(), &gap8).expect("M1.0 fits"),
        &deploy(&ModelId::Aux(grid).paper_desc(), &gap8).expect("aux fits"),
    );
    let table = EvalTable::build(
        &data,
        &mut Backend::Float(&mut small),
        &mut Backend::Float(&mut big),
        &mut Backend::Float(&mut aux),
        grid,
    );
    Pipeline {
        data,
        small,
        big,
        aux,
        costs,
        table,
    }
}

#[test]
fn static_extremes_bound_adaptive_costs() {
    let p = build_pipeline();
    let small_only = evaluate_policy(&mut RandomPolicy::new(0.0, 1), &p.table, &p.costs);
    let big_only = evaluate_policy(&mut RandomPolicy::new(1.0, 1), &p.table, &p.costs);
    assert!(small_only.mean_cycles < big_only.mean_cycles);

    for th in [0.02f32, 0.1, 0.5] {
        let r = evaluate_policy(&mut OpPolicy::new(th), &p.table, &p.costs);
        // OP always runs the small model, so its cost is at least the
        // small model's, and at most small + big.
        assert!(r.mean_cycles >= small_only.mean_cycles);
        assert!(r.mean_cycles <= small_only.mean_cycles + big_only.mean_cycles + 1.0);
    }
}

#[test]
fn op_threshold_monotonically_reduces_big_usage() {
    let p = build_pipeline();
    let mut last_frac = f64::INFINITY;
    for th in [0.0f32, 0.05, 0.15, 0.5, f32::INFINITY] {
        let r = evaluate_policy(&mut OpPolicy::new(th), &p.table, &p.costs);
        assert!(
            r.frac_big <= last_frac + 1e-9,
            "frac_big not monotone at th {th}: {} > {last_frac}",
            r.frac_big
        );
        last_frac = r.frac_big;
    }
}

#[test]
fn oracle_is_at_least_as_accurate_as_static_members() {
    let p = build_pipeline();
    let oracle = evaluate_policy(&mut OraclePolicy::new(), &p.table, &p.costs);
    let small_only = evaluate_policy(&mut RandomPolicy::new(0.0, 1), &p.table, &p.costs);
    let big_only = evaluate_policy(&mut RandomPolicy::new(1.0, 1), &p.table, &p.costs);
    assert!(oracle.mae_sum <= small_only.mae_sum + 1e-6);
    assert!(oracle.mae_sum <= big_only.mae_sum + 1e-6);
}

#[test]
fn sweeps_produce_nonempty_pareto_fronts() {
    let p = build_pipeline();
    let mut points = sweep_op(&p.table, &p.costs, 9);
    points.extend(sweep_random(&p.table, &p.costs, 5));
    let front = pareto_front(&points);
    assert!(!front.is_empty());
    // Front is sorted by cycles and strictly improving in MAE.
    for w in front.windows(2) {
        assert!(w[0].result.mean_cycles <= w[1].result.mean_cycles);
        assert!(w[0].result.mae_sum > w[1].result.mae_sum);
    }
}

#[test]
fn error_map_builds_from_validation_split() {
    let mut p = build_pipeline();
    let grid = GridSpec::GRID_2X2;
    let val = p.data.val_indices();
    let cells = p.data.grid_labels(&val, grid);
    let features = EvalTable::build_for_indices(
        &p.data,
        &mut Backend::Float(&mut p.small),
        &mut Backend::Float(&mut p.big),
        &mut Backend::Float(&mut p.aux),
        grid,
        &val,
    );
    let map = ErrorMap::build(grid, &features, &cells);
    // All four cells exist; visited cells have counts.
    assert_eq!(map.values().len(), 4);
    let total: usize = (0..4).map(|c| map.count(c)).sum();
    assert_eq!(total, val.len());
}

#[test]
fn quantized_backend_works_in_tables() {
    let mut p = build_pipeline();
    let calib_idx: Vec<usize> = p.data.train_indices().into_iter().take(32).collect();
    let calib = p.data.images_tensor(&calib_idx);
    let q_small = nanopose::quant::QuantizedNetwork::quantize(&p.small, &calib);
    let q_big = nanopose::quant::QuantizedNetwork::quantize(&p.big, &calib);
    let table_q = EvalTable::build(
        &p.data,
        &mut Backend::Quantized(&q_small),
        &mut Backend::Quantized(&q_big),
        &mut Backend::Float(&mut p.aux),
        GridSpec::GRID_2X2,
    );
    assert_eq!(table_q.n_frames(), p.table.n_frames());
    // Int8 predictions stay in the plausible pose envelope.
    for f in table_q.iter_frames() {
        assert!(f.small_pose.x.is_finite());
        assert!((0.0..=4.0).contains(&f.small_pose.x));
    }
}

#[test]
fn policies_only_pay_aux_when_they_use_it() {
    let p = build_pipeline();
    // Random never consults the aux CNN: with p_big = 1 its cost must be
    // exactly the big model (+ overhead), strictly below an aux policy
    // that also always picks big.
    let big_only = evaluate_policy(&mut RandomPolicy::new(1.0, 1), &p.table, &p.costs);
    struct AlwaysBigWithAux;
    impl AdaptivePolicy for AlwaysBigWithAux {
        fn name(&self) -> String {
            "aux-always-big".into()
        }
        fn reset(&mut self) {}
        fn decide(
            &mut self,
            _f: &nanopose::adaptive::FrameFeatures,
        ) -> nanopose::adaptive::Decision {
            nanopose::adaptive::Decision::Big
        }
        fn uses_aux(&self) -> bool {
            true
        }
    }
    let with_aux = evaluate_policy(&mut AlwaysBigWithAux, &p.table, &p.costs);
    assert!(with_aux.mean_cycles > big_only.mean_cycles);
}
