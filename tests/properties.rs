//! Workspace-level property tests: invariants that must hold across crate
//! boundaries for arbitrary inputs.

use nanopose::adaptive::policy::AdaptivePolicy;
use nanopose::adaptive::{Decision, FrameFeatures, OpPolicy};
use nanopose::dataset::{GridSpec, Pose, PoseScaler};
use nanopose::dory::{deploy, plan::ensemble_l2_bytes};
use nanopose::gap8::Gap8Config;
use nanopose::nn::init::SmallRng;
use nanopose::quant::QuantParams;
use nanopose::zoo::frontnet::build_frontnet;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Min-max scaling roundtrips for any in-range pose.
    #[test]
    fn pose_scaling_roundtrip(
        x in 0.4f32..3.6,
        y in -1.6f32..1.6,
        z in -0.7f32..0.7,
        phi in -3.1f32..3.1,
    ) {
        let scaler = PoseScaler::default();
        let pose = Pose::new(x, y, z, phi);
        let back = scaler.unscale(scaler.scale(&pose));
        prop_assert!(back.total_error(&pose) < 1e-3);
    }

    /// Quantize/dequantize error is bounded by half a step for in-range
    /// values, for arbitrary ranges.
    #[test]
    fn quant_roundtrip_error_bound(
        lo in -10.0f32..0.0,
        span in 0.1f32..20.0,
        t in 0.0f32..1.0,
    ) {
        let params = QuantParams::from_range(lo, lo + span);
        let x = lo + t * span;
        let err = (params.dequantize(params.quantize(x)) - x).abs();
        prop_assert!(err <= params.scale * 0.5 + 1e-6);
    }

    /// Any Frontnet channel config deploys onto GAP8 and its cycle count
    /// grows with its MAC count.
    #[test]
    fn frontnet_variants_deploy(
        c1 in 1usize..5,
        c2 in 1usize..5,
        c3 in 1usize..5,
    ) {
        let channels = [c1 * 8, c2 * 8, c3 * 8, 16, 16, 16, 16];
        let mut rng = SmallRng::seed(0);
        let net = build_frontnet("t", &channels, (1, 96, 160), &mut rng);
        let desc = net.describe((1, 96, 160));
        let plan = deploy(&desc, &Gap8Config::default());
        prop_assert!(plan.is_ok());
        let plan = plan.expect("checked");
        prop_assert!(plan.total_cycles() > 0);
        prop_assert!(plan.l2_bytes() < 512 * 1024);
    }

    /// Ensemble memory never exceeds the sum of individual deployments.
    #[test]
    fn ensemble_memory_subadditive(ca in 1usize..4, cb in 1usize..4) {
        let mut rng = SmallRng::seed(0);
        let a = build_frontnet("a", &[ca * 8; 7], (1, 96, 160), &mut rng).describe((1, 96, 160));
        let b = build_frontnet("b", &[cb * 8; 7], (1, 96, 160), &mut rng).describe((1, 96, 160));
        let gap8 = Gap8Config::default();
        let separate = deploy(&a, &gap8).expect("fits").l2_bytes()
            + deploy(&b, &gap8).expect("fits").l2_bytes();
        prop_assert!(ensemble_l2_bytes(&[&a, &b]) <= separate);
    }

    /// OP decisions depend only on the output-sum trajectory: adding a
    /// constant to all four outputs of every frame leaves the decisions
    /// unchanged only when the shift cancels in consecutive differences.
    #[test]
    fn op_invariant_to_constant_output_shift(
        sums in proptest::collection::vec(0.0f32..4.0, 2..30),
        shift in -0.5f32..0.5,
        th in 0.01f32..1.0,
    ) {
        let mk_frame = |s: f32| FrameFeatures {
            frame: 0,
            small_scaled: [s / 4.0; 4],
            big_scaled: [0.5; 4],
            small_pose: Pose::new(1.0, 0.0, 0.0, 0.0),
            big_pose: Pose::new(1.0, 0.0, 0.0, 0.0),
            avg_pose: Pose::new(1.0, 0.0, 0.0, 0.0),
            truth: Pose::new(1.0, 0.0, 0.0, 0.0),
            aux_cell: 0,
            aux_margin: 0.5,
        };
        let mut base = OpPolicy::new(th);
        let mut shifted = OpPolicy::new(th);
        let d1: Vec<Decision> = sums.iter().map(|&s| base.decide(&mk_frame(s))).collect();
        let d2: Vec<Decision> = sums.iter().map(|&s| shifted.decide(&mk_frame(s + shift))).collect();
        prop_assert_eq!(d1, d2);
    }

    /// Grid cell lookup is total over the image plane and border flags are
    /// consistent with coordinates.
    #[test]
    fn grid_cells_total_and_consistent(
        u in -50.0f32..250.0,
        v in -50.0f32..150.0,
    ) {
        for grid in [GridSpec::GRID_2X2, GridSpec::GRID_3X3, GridSpec::GRID_8X6] {
            let cell = grid.cell_of(u, v, 160, 96);
            prop_assert!(cell < grid.n_cells());
            if grid.is_corner(cell) {
                prop_assert!(grid.is_border(cell));
            }
        }
    }
}
