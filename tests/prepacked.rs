//! Exact-parity checks between the plan-once/run-many compiled programs
//! and the reference per-call execution paths, on the real paper networks
//! (proxy resolution). Integer arithmetic must be *bitwise* identical on
//! any thread count; the float program must be bitwise identical because
//! it replicates the reference operation order exactly.

use nanopose::nn::init::{Initializer, SmallRng};
use nanopose::nn::layers::{BatchNorm2d, Conv2d, DepthwiseConv2d, Flatten, Linear, Relu};
use nanopose::nn::{FScratch, FloatProgram, Sequential};
use nanopose::quant::{QScratch, QuantizedNetwork};
use nanopose::tensor::parallel::Pool;
use nanopose::tensor::Tensor;
use nanopose::zoo::channels::PROXY_INPUT;
use nanopose::zoo::ModelId;

const THREADS: [usize; 3] = [1, 2, 4];

fn frames(n: usize, seed: u64) -> Tensor {
    let (c, h, w) = PROXY_INPUT;
    let mut s = seed;
    let data: Vec<f32> = (0..n * c * h * w)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 40) as i32 % 200) as f32 / 100.0 - 1.0
        })
        .collect();
    Tensor::from_vec(&[n, c, h, w], data)
}

/// A depthwise-heavy MobileNet-ish network at proxy resolution whose
/// channel counts (5, 9, 11) are deliberately *not* multiples of the conv
/// microkernel's panel height, so every pointwise layer exercises the
/// ragged last panel, and whose depthwise stack covers kernel sizes 5 and
/// 3 at strides 1 and 2 (both the interior fast loop and the padded edge
/// bands).
fn build_dw_heavy(rng: &mut SmallRng) -> Sequential {
    let k = Initializer::KaimingUniform;
    Sequential::with_name(
        "dw-heavy-ragged",
        vec![
            Box::new(Conv2d::new(1, 5, 3, 2, 1, k, rng)),
            Box::new(Relu::new()),
            Box::new(DepthwiseConv2d::new(5, 5, 1, 2, k, rng)),
            Box::new(Relu::new()),
            Box::new(Conv2d::new(5, 9, 1, 1, 0, k, rng)),
            Box::new(BatchNorm2d::new(9)),
            Box::new(Relu::new()),
            Box::new(DepthwiseConv2d::new(9, 3, 2, 1, k, rng)),
            Box::new(Relu::new()),
            Box::new(Conv2d::new(9, 11, 1, 1, 0, k, rng)),
            Box::new(Relu::new()),
            Box::new(DepthwiseConv2d::new(11, 3, 1, 1, k, rng)),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(11 * 12 * 20, 4, k, rng)),
        ],
    )
}

#[test]
fn run_int_prepacked_is_bitwise_equal_on_zoo_networks() {
    let calib = frames(4, 9);
    for id in [ModelId::F1, ModelId::F2, ModelId::M10] {
        let mut rng = SmallRng::seed(17);
        let net = id.build_proxy(&mut rng);
        let qnet = QuantizedNetwork::quantize(&net, &calib);
        let program = qnet.compile(PROXY_INPUT);
        let mut scratch = QScratch::for_program(&program);

        for frame_seed in [1u64, 2, 3] {
            let frame = frames(1, frame_seed);
            let q = qnet.input_params().quantize_slice(frame.as_slice());
            let (want, want_shape) = qnet.run_int_with(Pool::serial(), &q, PROXY_INPUT);
            for threads in THREADS {
                let pool = Pool::new(threads);
                let (got, got_shape) = program.run_int_prepacked(pool, &mut scratch, &q);
                assert_eq!(got_shape, want_shape, "{} shape", id.name());
                assert_eq!(got, want.as_slice(), "{} t={threads}", id.name());
            }
        }
    }
}

#[test]
fn run_int_batched_is_bitwise_equal_on_zoo_networks() {
    let calib = frames(4, 9);
    let (c, h, w) = PROXY_INPUT;
    let frame_len = c * h * w;
    for id in [ModelId::F1, ModelId::F2, ModelId::M10] {
        let mut rng = SmallRng::seed(17);
        let net = id.build_proxy(&mut rng);
        let qnet = QuantizedNetwork::quantize(&net, &calib);
        let program = qnet.compile_batched(PROXY_INPUT, 8);
        let mut scratch = QScratch::for_program(&program);

        let stream = frames(8, 4);
        let q = qnet.input_params().quantize_slice(stream.as_slice());
        for batch in [1usize, 3, 8] {
            // Reference: B independent per-frame prepacked runs (already
            // pinned against run_int by the sibling test above).
            let mut want = Vec::new();
            for b in 0..batch {
                let (out, _) = program.run_int_prepacked(
                    Pool::serial(),
                    &mut scratch,
                    &q[b * frame_len..(b + 1) * frame_len],
                );
                want.extend_from_slice(out);
            }
            for threads in THREADS {
                let (got, shape) = program.run_int_batched(
                    Pool::new(threads),
                    &mut scratch,
                    &q[..batch * frame_len],
                    batch,
                );
                assert_eq!(shape, program.output_chw(), "{} shape", id.name());
                assert_eq!(got, &want[..], "{} b={batch} t={threads}", id.name());
            }
        }
    }
}

#[test]
fn forward_prepacked_is_bitwise_equal_on_zoo_networks() {
    let calib = frames(4, 23);
    for id in [ModelId::F1, ModelId::F2, ModelId::M10] {
        let mut rng = SmallRng::seed(29);
        let net = id.build_proxy(&mut rng);
        let qnet = QuantizedNetwork::quantize(&net, &calib);
        let program = qnet.compile(PROXY_INPUT);
        let mut scratch = QScratch::for_program(&program);

        let frame = frames(1, 6);
        let want = qnet.forward_with(Pool::serial(), &frame);
        for threads in THREADS {
            let got = program.forward_prepacked(Pool::new(threads), &mut scratch, frame.as_slice());
            assert_eq!(got, want.as_slice(), "{} t={threads}", id.name());
        }
    }
}

#[test]
fn prepacked_is_bitwise_equal_on_dw_heavy_ragged_network() {
    let calib = frames(4, 61);
    let mut rng = SmallRng::seed(43);
    let mut net = build_dw_heavy(&mut rng);
    // Populate BN running stats so folding has something real to fold.
    let _ = net.forward_train(&frames(2, 62));
    let qnet = QuantizedNetwork::quantize(&net, &calib);
    let program = qnet.compile(PROXY_INPUT);
    let mut scratch = QScratch::for_program(&program);

    for frame_seed in [11u64, 12, 13] {
        let frame = frames(1, frame_seed);
        let q = qnet.input_params().quantize_slice(frame.as_slice());
        let (want, want_shape) = qnet.run_int_with(Pool::serial(), &q, PROXY_INPUT);
        let want_f = qnet.forward_with(Pool::serial(), &frame);
        for threads in THREADS {
            let pool = Pool::new(threads);
            let (got, got_shape) = program.run_int_prepacked(pool, &mut scratch, &q);
            assert_eq!(got_shape, want_shape, "dw-heavy shape");
            assert_eq!(got, want.as_slice(), "dw-heavy int t={threads}");
            let got_f = program.forward_prepacked(pool, &mut scratch, frame.as_slice());
            assert_eq!(got_f, want_f.as_slice(), "dw-heavy float t={threads}");
        }
    }
}

#[test]
fn i8_and_i16_programs_are_bitwise_equal_on_zoo_networks() {
    // The same quantized network compiled to the raw-i8 conv format and
    // to the scalar-i16 format must agree bit-for-bit on every zoo
    // network, per-frame and batched — and the i8 program's packed conv
    // weights must actually be smaller (one byte per weight lane instead
    // of two).
    use nanopose::quant::KernelIsa;
    let calib = frames(4, 9);
    let (c, h, w) = PROXY_INPUT;
    let frame_len = c * h * w;
    for id in [ModelId::F1, ModelId::F2, ModelId::M10] {
        let mut rng = SmallRng::seed(17);
        let net = id.build_proxy(&mut rng);
        let qnet = QuantizedNetwork::quantize(&net, &calib);
        let p16 = qnet.compile_batched_for_isa(PROXY_INPUT, 4, KernelIsa::ScalarI16);
        let p8 = qnet.compile_batched_for_isa(PROXY_INPUT, 4, KernelIsa::Avx2I8);
        assert!(
            p8.packed_weight_bytes() < p16.packed_weight_bytes(),
            "{}: i8 packing must shrink the weights ({} vs {})",
            id.name(),
            p8.packed_weight_bytes(),
            p16.packed_weight_bytes()
        );
        let mut scratch = QScratch::for_programs(&[&p16, &p8]);

        let stream = frames(4, 4);
        let q = qnet.input_params().quantize_slice(stream.as_slice());
        for batch in [1usize, 2, 4] {
            let want = {
                let (out, _) = p16.run_int_batched(
                    Pool::serial(),
                    &mut scratch,
                    &q[..batch * frame_len],
                    batch,
                );
                out.to_vec()
            };
            for threads in THREADS {
                let (got, _) = p8.run_int_batched(
                    Pool::new(threads),
                    &mut scratch,
                    &q[..batch * frame_len],
                    batch,
                );
                assert_eq!(got, &want[..], "{} b={batch} t={threads}", id.name());
            }
        }
    }
}

#[test]
fn float_program_is_bitwise_equal_on_zoo_networks() {
    for id in [ModelId::F1, ModelId::F2, ModelId::M10] {
        let mut rng = SmallRng::seed(31);
        let mut net = id.build_proxy(&mut rng);
        // Populate BatchNorm running statistics before eval-mode parity.
        for seed in [40u64, 41] {
            let _ = net.forward_train(&frames(2, seed));
        }
        let program = FloatProgram::compile(&net, PROXY_INPUT);
        let mut scratch = FScratch::for_program(&program);

        let frame = frames(1, 8);
        for threads in THREADS {
            let pool = Pool::new(threads);
            let want = net.forward_with(pool, &frame);
            let got = program.forward_prepacked(pool, &mut scratch, frame.as_slice());
            assert_eq!(got, want.as_slice(), "{} t={threads}", id.name());
        }
    }
}
