//! Exact-parity checks between the plan-once/run-many compiled programs
//! and the reference per-call execution paths, on the real paper networks
//! (proxy resolution). Integer arithmetic must be *bitwise* identical on
//! any thread count; the float program must be bitwise identical because
//! it replicates the reference operation order exactly.

use nanopose::nn::init::SmallRng;
use nanopose::nn::{FScratch, FloatProgram};
use nanopose::quant::{QScratch, QuantizedNetwork};
use nanopose::tensor::parallel::Pool;
use nanopose::tensor::Tensor;
use nanopose::zoo::channels::PROXY_INPUT;
use nanopose::zoo::ModelId;

const THREADS: [usize; 3] = [1, 2, 4];

fn frames(n: usize, seed: u64) -> Tensor {
    let (c, h, w) = PROXY_INPUT;
    let mut s = seed;
    let data: Vec<f32> = (0..n * c * h * w)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 40) as i32 % 200) as f32 / 100.0 - 1.0
        })
        .collect();
    Tensor::from_vec(&[n, c, h, w], data)
}

#[test]
fn run_int_prepacked_is_bitwise_equal_on_zoo_networks() {
    let calib = frames(4, 9);
    for id in [ModelId::F1, ModelId::F2, ModelId::M10] {
        let mut rng = SmallRng::seed(17);
        let net = id.build_proxy(&mut rng);
        let qnet = QuantizedNetwork::quantize(&net, &calib);
        let program = qnet.compile(PROXY_INPUT);
        let mut scratch = QScratch::for_program(&program);

        for frame_seed in [1u64, 2, 3] {
            let frame = frames(1, frame_seed);
            let q = qnet.input_params().quantize_slice(frame.as_slice());
            let (want, want_shape) = qnet.run_int_with(Pool::serial(), &q, PROXY_INPUT);
            for threads in THREADS {
                let pool = Pool::new(threads);
                let (got, got_shape) = program.run_int_prepacked(pool, &mut scratch, &q);
                assert_eq!(got_shape, want_shape, "{} shape", id.name());
                assert_eq!(got, want.as_slice(), "{} t={threads}", id.name());
            }
        }
    }
}

#[test]
fn forward_prepacked_is_bitwise_equal_on_zoo_networks() {
    let calib = frames(4, 23);
    for id in [ModelId::F1, ModelId::F2, ModelId::M10] {
        let mut rng = SmallRng::seed(29);
        let net = id.build_proxy(&mut rng);
        let qnet = QuantizedNetwork::quantize(&net, &calib);
        let program = qnet.compile(PROXY_INPUT);
        let mut scratch = QScratch::for_program(&program);

        let frame = frames(1, 6);
        let want = qnet.forward_with(Pool::serial(), &frame);
        for threads in THREADS {
            let got = program.forward_prepacked(Pool::new(threads), &mut scratch, frame.as_slice());
            assert_eq!(got, want.as_slice(), "{} t={threads}", id.name());
        }
    }
}

#[test]
fn float_program_is_bitwise_equal_on_zoo_networks() {
    for id in [ModelId::F1, ModelId::F2, ModelId::M10] {
        let mut rng = SmallRng::seed(31);
        let mut net = id.build_proxy(&mut rng);
        // Populate BatchNorm running statistics before eval-mode parity.
        for seed in [40u64, 41] {
            let _ = net.forward_train(&frames(2, seed));
        }
        let program = FloatProgram::compile(&net, PROXY_INPUT);
        let mut scratch = FScratch::for_program(&program);

        let frame = frames(1, 8);
        for threads in THREADS {
            let pool = Pool::new(threads);
            let want = net.forward_with(pool, &frame);
            let got = program.forward_prepacked(pool, &mut scratch, frame.as_slice());
            assert_eq!(got, want.as_slice(), "{} t={threads}", id.name());
        }
    }
}
