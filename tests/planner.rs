//! Cross-crate planner validation: the np-tensor arena planner, fed the
//! activation chain of a paper network, must agree with the independent
//! np-dory deployment budget (`activation_bytes`, the ping-pong peak), and
//! every compiled [`QuantizedProgram`] must fit inside that budget.

use nanopose::dory::plan::activation_bytes;
use nanopose::nn::init::SmallRng;
use nanopose::nn::NetworkDesc;
use nanopose::quant::QuantizedNetwork;
use nanopose::tensor::arena::{chain_reqs, plan_arena};
use nanopose::tensor::Tensor;
use nanopose::zoo::ModelId;

const MODELS: [ModelId; 3] = [ModelId::F1, ModelId::F2, ModelId::M10];

/// The activation chain of a network at layer granularity: the input
/// tensor, then each layer's output, in execution order.
fn activation_chain(desc: &NetworkDesc) -> Vec<usize> {
    let mut sizes = vec![desc.input.0 * desc.input.1 * desc.input.2];
    for layer in &desc.layers {
        // Straight-line networks: each layer consumes its predecessor.
        assert_eq!(
            layer.input_elems(),
            *sizes.last().unwrap() as u64,
            "{}: layer {} breaks the chain",
            desc.name,
            layer.name
        );
        sizes.push(layer.output_elems() as usize);
    }
    sizes
}

#[test]
fn planner_peak_matches_dory_activation_budget() {
    for id in MODELS {
        let desc = id.paper_desc();
        let reqs = chain_reqs(&activation_chain(&desc));
        let plan = plan_arena(&reqs);
        plan.validate(&reqs);
        assert_eq!(
            plan.arena_bytes,
            activation_bytes(&desc),
            "{}: planner peak vs dory ping-pong budget",
            desc.name
        );
    }
}

#[test]
fn compiled_programs_fit_the_dory_budget() {
    let chw = nanopose::zoo::channels::PROXY_INPUT;
    let mut rng = SmallRng::seed(5);
    let calib = Tensor::from_vec(
        &[2, chw.0, chw.1, chw.2],
        (0..2 * chw.0 * chw.1 * chw.2)
            .map(|i| ((i * 37) % 255) as f32 / 127.5 - 1.0)
            .collect(),
    );
    for id in MODELS {
        let net = id.build_proxy(&mut rng);
        let desc = net.describe(chw);
        let program = QuantizedNetwork::quantize(&net, &calib).compile(chw);
        // The program plans with buffer reuse (and ReLU fused in-place), so
        // its arena can only be at or below the ping-pong budget.
        assert!(
            program.arena_bytes() <= activation_bytes(&desc),
            "{}: program arena {} exceeds dory budget {}",
            program.name(),
            program.arena_bytes(),
            activation_bytes(&desc)
        );
        assert!(program.arena_bytes() > 0);
    }
}
