//! Cross-crate integration: a trained proxy CNN perceiving rendered frames
//! inside the closed control loop — the full system of the paper's
//! Sec. III-C, end to end.

use nanopose::control::{FollowSim, SimConfig};
use nanopose::dataset::render::{render_frame, Camera, EnvInstance};
use nanopose::dataset::{DatasetConfig, PoseDataset, PoseScaler};
use nanopose::nn::init::SmallRng;
use nanopose::tensor::Tensor;
use nanopose::zoo::{train_regressor, ModelId, TrainRecipe};

#[test]
fn cnn_in_the_loop_keeps_subject_in_view() {
    // Train a quick F2 proxy.
    let data = PoseDataset::generate(&DatasetConfig {
        n_sequences: 24,
        frames_per_seq: 30,
        ..DatasetConfig::known()
    });
    let mut rng = SmallRng::seed(21);
    let mut model = ModelId::F2.build_proxy(&mut rng);
    train_regressor(
        &mut model,
        &data,
        &TrainRecipe {
            epochs: 10,
            ..TrainRecipe::fast_test()
        },
    );

    // Perception: render the true pose through the synthetic camera, run
    // the CNN, unscale its outputs.
    let cam = Camera::for_resolution(80, 48);
    let mut render_rng = SmallRng::seed(5);
    let env = EnvInstance::known(&mut render_rng);
    let scaler = PoseScaler::default();

    // A gently-moving subject: the briefly-trained proxy is noisy, and
    // the point of the test is loop stability, not peak tracking.
    let sim = FollowSim::new(SimConfig {
        duration: 12.0,
        subject_speed: 0.25,
        ..SimConfig::default()
    });
    let stats = sim.run(|truth| {
        let img = render_frame(truth, 0.0, &env, &cam, &mut render_rng);
        let x = Tensor::from_vec(&[1, 1, 48, 80], img);
        let y = model.forward(&x);
        let o = y.as_slice();
        scaler.unscale([o[0], o[1], o[2], o[3]])
    });

    eprintln!("closed-loop stats: {stats:?}");
    // A briefly-trained proxy is imprecise, but the Kalman + controller
    // stack must still keep the subject roughly in frame.
    assert!(stats.in_view_fraction > 0.5, "lost the subject: {stats:?}");
    assert!(stats.mean_distance_error < 1.5, "{stats:?}");
    assert!(stats.perception_updates > 100);
}
