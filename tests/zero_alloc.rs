//! Proof of the "zero-allocation steady state" claim: a counting global
//! allocator wraps the system allocator, and after one warm-up frame the
//! compiled programs (and the streaming [`FrameRunner`]) must perform
//! exactly zero heap allocations per frame on a serial pool.
//!
//! Everything runs inside a single `#[test]` so no concurrent test can
//! pollute the allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use nanopose::adaptive::{BatchCollector, FrameRunner};
use nanopose::nn::init::{Initializer, SmallRng};
use nanopose::nn::layers::{BatchNorm2d, Conv2d, DepthwiseConv2d, Flatten, Linear, Relu};
use nanopose::nn::{FScratch, FloatProgram, Sequential};
use nanopose::quant::{QScratch, QuantizedNetwork};
use nanopose::serve::{ServeConfig, Server, ServingEnsemble, SessionId};
use nanopose::tensor::parallel::Pool;
use nanopose::tensor::Tensor;
use nanopose::zoo::channels::PROXY_INPUT;
use nanopose::zoo::ModelId;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed while running `f`.
fn allocs_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCS.load(Ordering::SeqCst);
    let r = f();
    (ALLOCS.load(Ordering::SeqCst) - before, r)
}

fn frames(n: usize, seed: u64) -> Tensor {
    let (c, h, w) = PROXY_INPUT;
    let mut s = seed;
    let data: Vec<f32> = (0..n * c * h * w)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 40) as i32 % 200) as f32 / 100.0 - 1.0
        })
        .collect();
    Tensor::from_vec(&[n, c, h, w], data)
}

/// Depthwise-heavy network with ragged channel counts (5, 9, 11): every
/// pointwise conv ends on a partial microkernel panel and the depthwise
/// fast path handles both the interior loop and padded edges. Mirrors the
/// parity network in `tests/prepacked.rs`.
fn build_dw_heavy(rng: &mut SmallRng) -> Sequential {
    let k = Initializer::KaimingUniform;
    Sequential::with_name(
        "dw-heavy-ragged",
        vec![
            Box::new(Conv2d::new(1, 5, 3, 2, 1, k, rng)),
            Box::new(Relu::new()),
            Box::new(DepthwiseConv2d::new(5, 5, 1, 2, k, rng)),
            Box::new(Relu::new()),
            Box::new(Conv2d::new(5, 9, 1, 1, 0, k, rng)),
            Box::new(BatchNorm2d::new(9)),
            Box::new(Relu::new()),
            Box::new(DepthwiseConv2d::new(9, 3, 2, 1, k, rng)),
            Box::new(Relu::new()),
            Box::new(Conv2d::new(9, 11, 1, 1, 0, k, rng)),
            Box::new(Relu::new()),
            Box::new(DepthwiseConv2d::new(11, 3, 1, 1, k, rng)),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(11 * 12 * 20, 4, k, rng)),
        ],
    )
}

#[test]
fn steady_state_frames_do_not_allocate() {
    let pool = Pool::serial();
    let calib = frames(3, 50);
    let mut rng = SmallRng::seed(77);

    // --- Quantized program: int8 entry and float entry -------------------
    let net = ModelId::F1.build_proxy(&mut rng);
    let qnet = QuantizedNetwork::quantize(&net, &calib);
    let program = qnet.compile(PROXY_INPUT);
    let mut scratch = QScratch::new();
    let frame = frames(1, 51);
    let q = qnet.input_params().quantize_slice(frame.as_slice());

    // Warm-up grows the scratch to the program's planned sizes.
    let _ = program.run_int_prepacked(pool, &mut scratch, &q);
    for _ in 0..3 {
        let (n, _) = allocs_during(|| {
            let (out, _) = program.run_int_prepacked(pool, &mut scratch, &q);
            out[0]
        });
        assert_eq!(n, 0, "run_int_prepacked allocated in steady state");
    }

    let _ = program.forward_prepacked(pool, &mut scratch, frame.as_slice());
    for _ in 0..3 {
        let (n, _) =
            allocs_during(|| program.forward_prepacked(pool, &mut scratch, frame.as_slice())[0]);
        assert_eq!(n, 0, "forward_prepacked allocated in steady state");
    }

    // --- Depthwise-heavy ragged-channel network --------------------------
    // The microkernel's ragged-panel tails and the depthwise interior/edge
    // split must also run without touching the heap.
    let mut dwnet = build_dw_heavy(&mut rng);
    let _ = dwnet.forward_train(&calib);
    let qdw = QuantizedNetwork::quantize(&dwnet, &calib);
    let dwprogram = qdw.compile(PROXY_INPUT);
    let mut dwscratch = QScratch::for_program(&dwprogram);
    let qdw_in = qdw.input_params().quantize_slice(frame.as_slice());
    let _ = dwprogram.run_int_prepacked(pool, &mut dwscratch, &qdw_in);
    for _ in 0..3 {
        let (n, _) = allocs_during(|| {
            let (out, _) = dwprogram.run_int_prepacked(pool, &mut dwscratch, &qdw_in);
            out[0]
        });
        assert_eq!(n, 0, "dw-heavy run_int_prepacked allocated in steady state");
    }

    // --- Both conv weight formats, explicitly ----------------------------
    // The programs above compile at the host-default kernel isa; pin the
    // raw-i8 and i16 formats by name so the zero-alloc guarantee holds for
    // whichever format the default did *not* pick on this host (the u8
    // im2row staging buffer and the i16 one are reserved independently).
    for isa in [
        nanopose::quant::KernelIsa::ScalarI16,
        nanopose::quant::KernelIsa::Avx2I8,
    ] {
        let iprogram = qnet.compile_for_isa(PROXY_INPUT, isa);
        let mut iscratch = QScratch::for_program(&iprogram);
        let _ = iprogram.run_int_prepacked(pool, &mut iscratch, &q);
        for _ in 0..3 {
            let (n, _) = allocs_during(|| {
                let (out, _) = iprogram.run_int_prepacked(pool, &mut iscratch, &q);
                out[0]
            });
            assert_eq!(n, 0, "{isa:?} run_int_prepacked allocated in steady state");
        }
    }

    // --- Batched steady state --------------------------------------------
    // The cross-frame batched pass shares every guarantee of the
    // per-frame one: after the scratch is warm, a whole B=8 group runs
    // without touching the heap — im2row staging, the batched microkernel
    // sweep, depthwise planes, and the linear loop included.
    let bprogram = qnet.compile_batched(PROXY_INPUT, 8);
    let mut bscratch = QScratch::for_program(&bprogram);
    let batch_frames = frames(8, 53);
    let qbatch = qnet.input_params().quantize_slice(batch_frames.as_slice());
    let _ = bprogram.run_int_batched(pool, &mut bscratch, &qbatch, 8);
    for _ in 0..3 {
        let (n, _) = allocs_during(|| {
            let (out, _) = bprogram.run_int_batched(pool, &mut bscratch, &qbatch, 8);
            out[0]
        });
        assert_eq!(n, 0, "run_int_batched allocated in steady state");
    }
    // Partial batches reuse a prefix of the same plan: still zero.
    let (n, _) = allocs_during(|| {
        let (out, _) =
            bprogram.run_int_batched(pool, &mut bscratch, &qbatch[..3 * qbatch.len() / 8], 3);
        out[0]
    });
    assert_eq!(n, 0, "partial run_int_batched allocated in steady state");

    let _ = bprogram.forward_batched(pool, &mut bscratch, batch_frames.as_slice(), 8);
    for _ in 0..3 {
        let (n, _) = allocs_during(|| {
            bprogram.forward_batched(pool, &mut bscratch, batch_frames.as_slice(), 8)[0]
        });
        assert_eq!(n, 0, "forward_batched allocated in steady state");
    }

    // --- Float program ---------------------------------------------------
    let mut fnet = ModelId::F1.build_proxy(&mut rng);
    let _ = fnet.forward_train(&calib);
    let fprogram = FloatProgram::compile(&fnet, PROXY_INPUT);
    let mut fscratch = FScratch::new();
    let _ = fprogram.forward_prepacked(pool, &mut fscratch, frame.as_slice());
    for _ in 0..3 {
        let (n, _) =
            allocs_during(|| fprogram.forward_prepacked(pool, &mut fscratch, frame.as_slice())[0]);
        assert_eq!(
            n, 0,
            "FloatProgram::forward_prepacked allocated in steady state"
        );
    }

    // --- Streaming runner: both the ensemble and the small-only path -----
    let big = ModelId::M10.build_proxy(&mut rng);
    let qbig = QuantizedNetwork::quantize(&big, &calib);
    let mut runner = FrameRunner::new(&qnet, &qbig, PROXY_INPUT, 0.5, pool);
    let _ = runner.run_frame(frame.as_slice()); // first frame: ensemble warm-up
    let moved = frames(1, 52);
    let (n, r) = allocs_during(|| runner.run_frame(moved.as_slice()));
    assert_eq!(
        n, 0,
        "FrameRunner frame allocated (decision {:?})",
        r.decision
    );
    let (n, r) = allocs_during(|| runner.run_frame(moved.as_slice()));
    assert_eq!(
        n, 0,
        "FrameRunner frame allocated (decision {:?})",
        r.decision
    );
    assert!(!r.decision.runs_big(), "identical frame should stay small");

    // --- Batch collector: stage + flush cycle ----------------------------
    // Both halves of the collector's cadence must be allocation-free once
    // its preallocated staging exists: staging pushes (a copy into the
    // batch buffer) and the flush itself (batched little pass, policy
    // walk, gathered batched big pass).
    let mut collector = BatchCollector::new(&qnet, &qbig, PROXY_INPUT, 0.5, pool, 4, u64::MAX);
    let warm = frames(1, 54);
    for t in 0..4u64 {
        let _ = collector.push(warm.as_slice(), t); // warm-up group
    }
    assert_eq!(collector.frames(), 4);
    let (n, _) = allocs_during(|| {
        for t in 0..3u64 {
            assert!(collector.push(moved.as_slice(), t).is_none());
        }
        let results = collector.push(moved.as_slice(), 3).expect("full batch");
        results.len()
    });
    assert_eq!(n, 0, "BatchCollector push/flush cycle allocated");
    let (n, _) = allocs_during(|| {
        let _ = collector.push(moved.as_slice(), 0);
        collector.flush().len()
    });
    assert_eq!(n, 0, "BatchCollector partial flush allocated");

    // --- Serving: session slab + multiplexed tick loop -------------------
    // Admission hands out warm slab slots, and the steady submit → tick →
    // commit cycle across several sessions — little passes into private
    // arenas, policy walk, cross-session coalesced big passes — must not
    // touch the heap. Retiring a session and admitting a replacement
    // recycles the retired arena rather than freeing it.
    let ens = ServingEnsemble::compile(&qnet, &qbig, PROXY_INPUT, 3);
    let mut server = Server::new(
        &ens,
        pool,
        ServeConfig {
            max_sessions: 3,
            queue_capacity: 2,
        },
    );
    let mut ids: Vec<SessionId> = (0..3)
        .map(|_| server.admit(0.5).expect("slab sized for the fleet"))
        .collect();
    // Warm-up: first frames run the full ensemble, so both the per-slot
    // little arenas and the shared coalescing scratch see their peak.
    for t in 0..4u64 {
        for id in &ids {
            assert!(server.submit(*id, moved.as_slice(), t));
        }
        let _ = server.serve(t);
    }
    let slots_before = server.allocated_slots();
    let (n, _) = allocs_during(|| {
        let mut served = 0;
        for t in 0..3u64 {
            for id in &ids {
                assert!(server.submit(*id, frame.as_slice(), t));
            }
            served += server.serve(t).len();
        }
        served
    });
    assert_eq!(n, 0, "steady multi-session serving loop allocated");
    let (n, _) = allocs_during(|| {
        assert!(server.retire(ids[0]));
        ids[0] = server.admit(0.5).expect("freelist slot available");
        assert!(server.submit(ids[0], moved.as_slice(), 9));
        server.serve(9).len()
    });
    assert_eq!(n, 0, "session admit/retire churn allocated");
    assert_eq!(
        server.allocated_slots(),
        slots_before,
        "retired arenas must be reused, not freed"
    );

    // --- Instrumented steady state (trace feature only) ------------------
    // With the recorder installed *and* enabled, the per-step spans, frame
    // events and counters must all land in preallocated storage: the
    // instrumented hot path still performs zero heap allocations.
    #[cfg(feature = "trace")]
    {
        nanopose::trace::install(nanopose::trace::TraceConfig::default());
        nanopose::trace::enable();

        let _ = program.run_int_prepacked(pool, &mut scratch, &q);
        for _ in 0..3 {
            let (n, _) = allocs_during(|| {
                let (out, _) = program.run_int_prepacked(pool, &mut scratch, &q);
                out[0]
            });
            assert_eq!(n, 0, "instrumented run_int_prepacked allocated");
        }

        let _ = runner.run_frame(frame.as_slice());
        for _ in 0..3 {
            let (n, r) = allocs_during(|| runner.run_frame(moved.as_slice()));
            assert_eq!(
                n, 0,
                "instrumented FrameRunner frame allocated (decision {:?})",
                r.decision
            );
        }
        // Overflow the span ring deliberately: wraparound must overwrite in
        // place, never grow.
        let cap = nanopose::trace::TraceConfig::default().span_events;
        let steps_per_frame = 32; // upper bound for both proxy programs
        let frames_to_wrap = cap / steps_per_frame + 2;
        let (n, _) = allocs_during(|| {
            for _ in 0..frames_to_wrap.min(4096) {
                let _ = program.run_int_prepacked(pool, &mut scratch, &q);
            }
        });
        assert_eq!(n, 0, "span-ring wraparound allocated");

        assert!(nanopose::trace::active());
        nanopose::trace::disable();
        let (n, _) = allocs_during(|| {
            let (out, _) = program.run_int_prepacked(pool, &mut scratch, &q);
            out[0]
        });
        assert_eq!(n, 0, "disabled recorder allocated");
    }
}
