//! Concurrency exactness for the `np-serve` multiplexing layer: sessions
//! sharing one `Arc<QuantizedProgram>` pair must produce per-session
//! result streams bit-identical to isolated serial [`FrameRunner`]s, at
//! every pool width — work-stealing may reorder *execution*, never
//! *results*, and cross-session escalation coalescing must be invisible
//! in the outputs.
//!
//! Two angles:
//! - the paper's D1 = (F1, M1.0) and D2 = (F2, M1.0) ensembles on the
//!   proxy input, across pool widths 1–8;
//! - a property test over ragged channel counts / kernel geometry (every
//!   pointwise conv ends on a partial microkernel panel) and random
//!   thresholds, so the escalation mix — and therefore the coalescing
//!   pattern — varies per case.

use nanopose::adaptive::FrameResult;
use nanopose::nn::init::{Initializer, SmallRng};
use nanopose::nn::layers::{Conv2d, DepthwiseConv2d, Flatten, Linear, Relu};
use nanopose::nn::Sequential;
use nanopose::quant::QuantizedNetwork;
use nanopose::serve::{ServeConfig, Server, ServingEnsemble, SessionId};
use nanopose::tensor::parallel::Pool;
use nanopose::tensor::Tensor;
use nanopose::zoo::channels::PROXY_INPUT;
use nanopose::zoo::ModelId;
use proptest::prelude::*;

fn frames(n: usize, seed: u64, chw: (usize, usize, usize)) -> Tensor {
    let (c, h, w) = chw;
    let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
    let data: Vec<f32> = (0..n * c * h * w)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 40) as i32 % 200) as f32 / 100.0 - 1.0
        })
        .collect();
    Tensor::from_vec(&[n, c, h, w], data)
}

/// Serves `streams` through a fresh server at the given pool width,
/// submitting one frame per session per tick, and returns the per-session
/// result sequences.
fn serve_streams(
    ens: &ServingEnsemble,
    th: f32,
    pool: Pool,
    streams: &[Tensor],
    n_frames: usize,
) -> Vec<Vec<FrameResult>> {
    let frame_len = {
        let (c, h, w) = ens.little().input_chw();
        c * h * w
    };
    let mut server = Server::new(
        ens,
        pool,
        ServeConfig {
            max_sessions: streams.len(),
            queue_capacity: 2,
        },
    );
    let ids: Vec<SessionId> = (0..streams.len())
        .map(|_| server.admit(th).expect("slab sized for the fleet"))
        .collect();
    let mut got: Vec<Vec<FrameResult>> = vec![Vec::new(); streams.len()];
    for f in 0..n_frames {
        for (s, id) in ids.iter().enumerate() {
            assert!(server.submit(
                *id,
                &streams[s].as_slice()[f * frame_len..(f + 1) * frame_len],
                f as u64
            ));
        }
        for sv in server.serve(f as u64) {
            got[sv.session.index()].push(sv.result);
        }
    }
    for (s, results) in got.iter().enumerate() {
        assert_eq!(results.len(), n_frames, "session {s} must drain fully");
    }
    got
}

/// Isolated serial FrameRunners over the same shared programs: the
/// ground truth each served session is compared against bit for bit.
fn isolated_streams(
    ens: &ServingEnsemble,
    th: f32,
    streams: &[Tensor],
    n_frames: usize,
) -> Vec<Vec<FrameResult>> {
    let frame_len = {
        let (c, h, w) = ens.little().input_chw();
        c * h * w
    };
    streams
        .iter()
        .map(|stream| {
            let mut runner = ens.runner(th, Pool::serial());
            (0..n_frames)
                .map(|f| runner.run_frame(&stream.as_slice()[f * frame_len..(f + 1) * frame_len]))
                .collect()
        })
        .collect()
}

/// D1 and D2 ensembles on the proxy input: four sessions multiplexed at
/// pool widths 1–8 match their isolated serial baselines exactly.
#[test]
fn paper_ensembles_served_bit_exact_across_pool_widths() {
    let calib = frames(4, 7, PROXY_INPUT);
    let mut rng = SmallRng::seed(21);
    let f1 = QuantizedNetwork::quantize(&ModelId::F1.build_proxy(&mut rng), &calib);
    let f2 = QuantizedNetwork::quantize(&ModelId::F2.build_proxy(&mut rng), &calib);
    let m10 = QuantizedNetwork::quantize(&ModelId::M10.build_proxy(&mut rng), &calib);

    let n_sessions = 4;
    let n_frames = 5;
    let th = 0.05;
    for (name, little) in [("D1", &f1), ("D2", &f2)] {
        let ens = ServingEnsemble::compile(little, &m10, PROXY_INPUT, 3);
        let streams: Vec<Tensor> = (0..n_sessions)
            .map(|s| frames(n_frames, 40 + s as u64, PROXY_INPUT))
            .collect();
        let want = isolated_streams(&ens, th, &streams, n_frames);
        for threads in [1usize, 2, 3, 4, 8] {
            let got = serve_streams(&ens, th, Pool::new(threads), &streams, n_frames);
            assert_eq!(got, want, "{name} diverged at {threads} threads");
        }
    }
}

fn conv_out_dim(side: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    (side + 2 * pad - kernel) / stride + 1
}

/// A little/big pair over ragged channel counts ending in a 4-output
/// head, mirroring the geometry of the np-quant batched property tests.
fn ragged_pair(
    c1: usize,
    c2: usize,
    kernel: usize,
    stride: usize,
    side: usize,
    seed: u64,
) -> (QuantizedNetwork, QuantizedNetwork, (usize, usize, usize)) {
    let mut rng = SmallRng::seed(seed ^ 0x5EF7);
    let k = Initializer::KaimingUniform;
    let build = |c1: usize, c2: usize, rng: &mut SmallRng| {
        let oh = conv_out_dim(side, kernel, stride, 1);
        Sequential::with_name(
            "serve-prop",
            vec![
                Box::new(Conv2d::new(1, c1, kernel, stride, 1, k, rng)),
                Box::new(Relu::new()),
                Box::new(DepthwiseConv2d::new(c1, 3, 1, 1, k, rng)),
                Box::new(Relu::new()),
                Box::new(Conv2d::new(c1, c2, 1, 1, 0, k, rng)),
                Box::new(Relu::new()),
                Box::new(Flatten::new()),
                Box::new(Linear::new(c2 * oh * oh, 4, k, rng)),
            ],
        )
    };
    let chw = (1, side, side);
    let little = build(c1, c2, &mut rng);
    let big = build(c1 + 2, c2 + 3, &mut rng);
    let calib = frames(3, seed ^ 0xCA11B, chw);
    (
        QuantizedNetwork::quantize(&little, &calib),
        QuantizedNetwork::quantize(&big, &calib),
        chw,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Ragged shapes, random thresholds: three multiplexed sessions match
    /// their isolated serial baselines bit for bit at every pool width.
    #[test]
    fn ragged_ensembles_served_bit_exact(
        c1 in 1usize..5,
        c2 in 1usize..7,
        kernel in 1usize..4,
        stride in 1usize..3,
        side in 8usize..13,
        th in 0.01f32..0.5,
        seed in 0u64..1_000_000,
    ) {
        let (little, big, chw) = ragged_pair(c1, c2, kernel, stride, side, seed);
        let ens = ServingEnsemble::compile(&little, &big, chw, 2);
        let n_sessions = 3;
        let n_frames = 4;
        let streams: Vec<Tensor> = (0..n_sessions)
            .map(|s| frames(n_frames, seed ^ (s as u64) << 8, chw))
            .collect();
        let want = isolated_streams(&ens, th, &streams, n_frames);
        for threads in [1usize, 2, 5, 8] {
            let got = serve_streams(&ens, th, Pool::new(threads), &streams, n_frames);
            prop_assert_eq!(&got, &want, "diverged at {} threads", threads);
        }
    }
}
