#!/usr/bin/env bash
# Regenerates every paper artifact. First run trains the zoo (cached in
# artifacts/). Outputs land in results/.
set -euo pipefail
mkdir -p results
for bin in table1 fig3 fig4 fig5 table2 fig6 ablation headlines; do
    echo "=== $bin ==="
    cargo run -p np-bench --release --bin "$bin" > "results/$bin.txt" 2> "results/$bin.log" || {
        echo "$bin FAILED"; tail -5 "results/$bin.log"; exit 1; }
    tail -3 "results/$bin.log" || true
done
echo "all artifacts regenerated under results/"
